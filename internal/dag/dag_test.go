package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

func ringTopo(t *testing.T, nNodes, gpn int) *topo.Topology {
	t.Helper()
	return topo.New(nNodes, gpn, topo.A100())
}

func TestRingAllGatherDeps(t *testing.T) {
	a, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(a, topo.New(1, 4, topo.A100()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NTasks() != 12 {
		t.Fatalf("tasks = %d, want 12", g.NTasks())
	}
	// Step-0 tasks have no deps; each later transfer of a chunk depends
	// on exactly the previous hop.
	for i, task := range g.Tasks {
		switch task.Step {
		case 0:
			if len(g.Deps[i]) != 0 {
				t.Errorf("step-0 task %v has deps %v", task.Transfer, g.Deps[i])
			}
		default:
			if len(g.Deps[i]) != 1 {
				t.Errorf("task %v has %d deps, want 1", task.Transfer, len(g.Deps[i]))
				continue
			}
			dep := g.Tasks[g.Deps[i][0]]
			if dep.Chunk != task.Chunk || dep.Step != task.Step-1 || dep.Dst != task.Src {
				t.Errorf("task %v depends on %v; want previous hop of same chunk", task.Transfer, dep.Transfer)
			}
		}
	}
	// Ring AllGather: every chunk's sub-DAG is a chain of length n−1.
	if got := g.CriticalPathLen(); got != 3 {
		t.Errorf("critical path = %d, want 3", got)
	}
}

func TestTopoOrderCoversAllTasks(t *testing.T) {
	a, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(a, ringTopo(t, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != g.NTasks() {
		t.Fatalf("topo order covers %d of %d tasks", len(order), g.NTasks())
	}
	pos := make([]int, g.NTasks())
	for i, id := range order {
		pos[id] = i
	}
	for t2 := range g.Tasks {
		for _, d := range g.Deps[t2] {
			if pos[d] >= pos[t2] {
				t.Fatalf("dependency %d not before task %d in topo order", d, t2)
			}
		}
	}
}

func TestRejectsRankMismatch(t *testing.T) {
	a, _ := expert.RingAllGather(4)
	if _, err := Build(a, topo.New(1, 8, topo.A100())); err == nil {
		t.Fatal("expected rank/topology mismatch error")
	}
}

func TestRejectsUndeliveredRead(t *testing.T) {
	// Rank 0 sends chunk 1 (owned by rank 1) without ever receiving it.
	a := &ir.Algorithm{
		Name: "bad", Op: ir.OpAllGather, NRanks: 2, NChunks: 2,
		Transfers: []ir.Transfer{
			{Src: 0, Dst: 1, Step: 0, Chunk: 1, Type: ir.CommRecv},
		},
	}
	if _, err := Build(a, topo.New(1, 2, topo.A100())); err == nil {
		t.Fatal("expected undelivered-read error")
	}
}

func TestRejectsSameStepWriteConflict(t *testing.T) {
	// Two writes into (rank 2, chunk 0) at the same step.
	a := &ir.Algorithm{
		Name: "conflict", Op: ir.OpAllReduce, NRanks: 3, NChunks: 3,
		Transfers: []ir.Transfer{
			{Src: 0, Dst: 2, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
			{Src: 1, Dst: 2, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
		},
	}
	if _, err := Build(a, topo.New(1, 3, topo.A100())); err == nil {
		t.Fatal("expected same-step write conflict error")
	}
}

func TestCommLinksInterNodeShareNIC(t *testing.T) {
	tp := topo.New(2, 8, topo.A100()) // 4 NICs/node, 2 GPUs per NIC
	a, err := expert.HMAllReduce(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(a, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Two inter-node tasks from GPU 0 and GPU 1 (which share NIC 0)
	// must share a communication link; two intra-node tasks on
	// different pairs must not.
	var fromG0, fromG1, intraA, intraB ir.TaskID = -1, -1, -1, -1
	for i, task := range g.Tasks {
		inter := !tp.SameNode(task.Src, task.Dst)
		switch {
		case inter && task.Src == 0 && fromG0 < 0:
			fromG0 = ir.TaskID(i)
		case inter && task.Src == 1 && fromG1 < 0:
			fromG1 = ir.TaskID(i)
		case !inter && task.Src == 0 && task.Dst == 1 && intraA < 0:
			intraA = ir.TaskID(i)
		case !inter && task.Src == 2 && task.Dst == 3 && intraB < 0:
			intraB = ir.TaskID(i)
		}
	}
	if fromG0 < 0 || fromG1 < 0 || intraA < 0 || intraB < 0 {
		t.Fatal("could not find probe tasks")
	}
	if !g.SharesLink(fromG0, fromG1) {
		t.Error("inter-node tasks from NIC-sharing GPUs should share a link")
	}
	if g.SharesLink(intraA, intraB) {
		t.Error("distinct intra-node pairs should not share a link")
	}
}

// Property: for random ring-like algorithms the dependency graph is
// always acyclic and decomposes by chunk.
func TestPropertyDAGAcyclicByChunk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7) // 2..8 ranks
		a, err := expert.RingAllReduce(n)
		if err != nil {
			return false
		}
		g, err := Build(a, topo.New(1, n, topo.A100()))
		if err != nil {
			return false
		}
		if _, err := g.TopoOrder(); err != nil {
			return false
		}
		for t2 := range g.Tasks {
			for _, d := range g.Deps[t2] {
				if g.Tasks[d].Chunk != g.Tasks[t2].Chunk {
					return false // data deps must stay within a chunk
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInitiallyHolds(t *testing.T) {
	if !InitiallyHolds(ir.OpAllGather, 3, 3, 8, 8) {
		t.Error("AllGather: rank 3 should hold chunk 3")
	}
	if InitiallyHolds(ir.OpAllGather, 3, 4, 8, 8) {
		t.Error("AllGather: rank 3 should not hold chunk 4")
	}
	if !InitiallyHolds(ir.OpAllGather, 3, 11, 8, 16) {
		t.Error("AllGather: rank 3 should hold chunk 11 when nChunks=16")
	}
	if !InitiallyHolds(ir.OpAllReduce, 0, 7, 8, 8) {
		t.Error("AllReduce: every rank holds every chunk")
	}
	if !InitiallyHolds(ir.OpReduceScatter, 5, 2, 8, 8) {
		t.Error("ReduceScatter: every rank holds every chunk")
	}
}
