// Package dag performs the global dependency analysis of §4.1: it turns
// an ir.Algorithm into a dependency DAG whose vertices are transmission
// tasks and whose edges are data dependencies, and annotates every task
// with the communication links it occupies so the scheduler can honour
// communication dependencies (§3).
//
// Because different chunks live at isolated buffer addresses, data
// dependencies only ever connect tasks of the same chunk; the DAG
// decomposes into per-chunk sub-DAGs (the G[C] of Algorithm 1).
package dag

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Graph is the analysed form of an algorithm.
type Graph struct {
	Algo *ir.Algorithm
	Topo *topo.Topology

	// Tasks is dense by TaskID in deterministic (step, chunk, src, dst)
	// order.
	Tasks []ir.Task

	// Deps[t] lists the tasks t data-depends on: they must complete
	// their invocation for a micro-batch before t runs for that same
	// micro-batch (§3 rule 1). Dependents is the reverse adjacency.
	Deps       [][]ir.TaskID
	Dependents [][]ir.TaskID

	// Paths[t] is the network path of task t; Links[t] is the subset of
	// path resources whose sharing constitutes a communication
	// dependency.
	Paths []topo.Path
	Links [][]topo.LinkID

	// ChunkTasks[c] lists the tasks of chunk c in ascending step order —
	// the per-chunk sub-DAG G[C] that HPDS iterates over.
	ChunkTasks [][]ir.TaskID

	// LinkTasks groups tasks by communication link, used for link-load
	// statistics and priority seeding.
	LinkTasks map[topo.LinkID][]ir.TaskID

	// LinkWindows[l] is the number of tasks that may occupy link l
	// concurrently before aggregate TB capability exceeds the link's
	// bandwidth (Fig. 4). Scheduling beyond the window creates a
	// communication dependency.
	LinkWindows map[topo.LinkID]int
}

// InitiallyHolds reports whether, before the collective starts, rank r's
// buffer already contains valid data for chunk c under operator op with
// nRanks ranks and nChunks chunks per rank.
//
//   - AllGather: rank r contributes only its own chunks (chunk c lives
//     on rank c mod nRanks).
//   - Broadcast: only the root (rank 0) holds valid data.
//   - AllToAll: with nChunks = nRanks², chunk s·nRanks+d starts at its
//     source rank s.
//   - AllReduce / ReduceScatter: every rank holds a local copy of every
//     chunk (its own contribution to the reduction).
func InitiallyHolds(op ir.OpType, r ir.Rank, c ir.ChunkID, nRanks, nChunks int) bool {
	_ = nChunks // the precondition depends only on the rank count
	return initiallyHolds(op, r, c, nRanks)
}

// AlgoHolds is InitiallyHolds with the algorithm's Initial override
// applied: repair plans carry an explicit precondition matrix describing
// what a partially executed collective already delivered.
func AlgoHolds(a *ir.Algorithm, r ir.Rank, c ir.ChunkID) bool {
	if a.Initial != nil {
		return a.Initial[r][c]
	}
	return initiallyHolds(a.Op, r, c, a.NRanks)
}

func initiallyHolds(op ir.OpType, r ir.Rank, c ir.ChunkID, nRanks int) bool {
	switch op {
	case ir.OpAllGather:
		return int(c)%nRanks == int(r)
	case ir.OpBroadcast:
		return r == 0 // only the root holds valid data
	case ir.OpAllToAll:
		return int(c)/nRanks == int(r)
	case ir.OpAllReduce, ir.OpReduceScatter:
		return true
	default:
		return true
	}
}

// access records one buffer touch for hazard analysis.
type access struct {
	task  ir.TaskID
	step  ir.Step
	write bool
}

// Build analyses algo on t and returns its dependency graph. It rejects
// algorithms with write-write or read-write hazards at the same step
// (ambiguous ordering) and reads of chunks a rank cannot yet hold —
// both indicate an incorrect plan.
func Build(algo *ir.Algorithm, t *topo.Topology) (*Graph, error) {
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if algo.NRanks != t.NRanks() {
		return nil, fmt.Errorf("dag: algorithm %q has %d ranks but topology has %d",
			algo.Name, algo.NRanks, t.NRanks())
	}

	sorted := algo.Sorted()
	g := &Graph{
		Algo:        algo,
		Topo:        t,
		Tasks:       make([]ir.Task, len(sorted)),
		Deps:        make([][]ir.TaskID, len(sorted)),
		Dependents:  make([][]ir.TaskID, len(sorted)),
		Paths:       make([]topo.Path, len(sorted)),
		Links:       make([][]topo.LinkID, len(sorted)),
		ChunkTasks:  make([][]ir.TaskID, algo.NChunks),
		LinkTasks:   make(map[topo.LinkID][]ir.TaskID),
		LinkWindows: make(map[topo.LinkID]int),
	}
	for i, tr := range sorted {
		id := ir.TaskID(i)
		g.Tasks[i] = ir.Task{ID: id, Transfer: tr}
		p := t.Path(tr.Src, tr.Dst)
		g.Paths[i] = p
		g.Links[i] = p.CommLinks
		g.ChunkTasks[tr.Chunk] = append(g.ChunkTasks[tr.Chunk], id)
		for _, l := range p.CommLinks {
			g.LinkTasks[l] = append(g.LinkTasks[l], id)
			w := t.LinkWindow(l, p.TBCap)
			if cur, ok := g.LinkWindows[l]; !ok || w < cur {
				g.LinkWindows[l] = w
			}
		}
	}

	if err := g.buildDataDeps(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildDataDeps derives data-dependency edges from buffer hazards: for
// every (rank, chunk) location, order accesses by step; a read depends on
// the last preceding write, a write depends on the last preceding write
// and every read since it (anti-dependency: the old value must have been
// forwarded before it is overwritten or reduced into).
func (g *Graph) buildDataDeps() error {
	algo := g.Algo
	// accesses[rank][chunk]
	accesses := make(map[[2]int][]access)
	for i := range g.Tasks {
		task := g.Tasks[i]
		src := [2]int{int(task.Src), int(task.Chunk)}
		dst := [2]int{int(task.Dst), int(task.Chunk)}
		accesses[src] = append(accesses[src], access{task: task.ID, step: task.Step, write: false})
		accesses[dst] = append(accesses[dst], access{task: task.ID, step: task.Step, write: true})
	}

	depSet := make(map[ir.TaskID]map[ir.TaskID]struct{})
	addDep := func(from, on ir.TaskID) {
		if from == on {
			return
		}
		m, ok := depSet[from]
		if !ok {
			m = make(map[ir.TaskID]struct{})
			depSet[from] = m
		}
		m[on] = struct{}{}
	}

	keys := make([][2]int, 0, len(accesses))
	for k := range accesses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	for _, loc := range keys {
		accs := accesses[loc]
		sort.Slice(accs, func(i, j int) bool {
			if accs[i].step != accs[j].step {
				return accs[i].step < accs[j].step
			}
			// Reads before writes at the same step would be ambiguous;
			// keep deterministic order for the conflict check below.
			if accs[i].write != accs[j].write {
				return !accs[i].write
			}
			return accs[i].task < accs[j].task
		})
		rank, chunk := ir.Rank(loc[0]), ir.ChunkID(loc[1])
		var lastWrite *access
		var readsSince []access
		for i := range accs {
			a := accs[i]
			// Same-step hazard detection.
			if a.write {
				for _, other := range accs {
					if other.task != a.task && other.step == a.step {
						return fmt.Errorf(
							"dag: algorithm %q: tasks %v and %v access rank %d chunk %d at the same step %d with a write — ordering is ambiguous",
							g.Algo.Name, g.Tasks[a.task].Transfer, g.Tasks[other.task].Transfer, rank, chunk, a.step)
					}
				}
			}
			if a.write {
				if lastWrite != nil {
					addDep(a.task, lastWrite.task)
				}
				for _, r := range readsSince {
					addDep(a.task, r.task)
				}
				aCopy := a
				lastWrite = &aCopy
				readsSince = readsSince[:0]
			} else {
				if lastWrite != nil {
					addDep(a.task, lastWrite.task)
				} else if !AlgoHolds(algo, rank, chunk) {
					return fmt.Errorf(
						"dag: algorithm %q: task %v reads chunk %d at rank %d before any task delivers it and rank %d does not initially hold it",
						g.Algo.Name, g.Tasks[a.task].Transfer, chunk, rank, rank)
				}
				readsSince = append(readsSince, a)
			}
		}
	}

	for from, ons := range depSet {
		deps := make([]ir.TaskID, 0, len(ons))
		for on := range ons {
			deps = append(deps, on)
		}
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
		g.Deps[from] = deps
		for _, on := range deps {
			g.Dependents[on] = append(g.Dependents[on], from)
		}
	}
	for i := range g.Dependents {
		sort.Slice(g.Dependents[i], func(a, b int) bool { return g.Dependents[i][a] < g.Dependents[i][b] })
	}
	return nil
}

// NTasks returns the number of tasks in the graph.
func (g *Graph) NTasks() int { return len(g.Tasks) }

// InDegrees returns a fresh in-degree vector (number of data
// dependencies per task), for consumers that peel the DAG.
func (g *Graph) InDegrees() []int {
	in := make([]int, len(g.Tasks))
	for i := range g.Deps {
		in[i] = len(g.Deps[i])
	}
	return in
}

// SharesLink reports whether tasks a and b occupy at least one common
// communication link — the communication-dependency predicate comm(a,b)
// of §4.3. Link slices are tiny (1–2 entries) so the scan is linear.
func (g *Graph) SharesLink(a, b ir.TaskID) bool {
	for _, la := range g.Links[a] {
		for _, lb := range g.Links[b] {
			if la == lb {
				return true
			}
		}
	}
	return false
}

// TopoOrder returns one valid topological order of the tasks or an error
// if the dependency graph has a cycle (which would deadlock execution;
// by construction edges follow increasing steps, so a cycle indicates a
// builder bug).
func (g *Graph) TopoOrder() ([]ir.TaskID, error) {
	in := g.InDegrees()
	queue := make([]ir.TaskID, 0, len(in))
	for i, d := range in {
		if d == 0 {
			queue = append(queue, ir.TaskID(i))
		}
	}
	order := make([]ir.TaskID, 0, len(in))
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, dep := range g.Dependents[t] {
			in[dep]--
			if in[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("dag: algorithm %q: dependency graph has a cycle (%d of %d tasks ordered)",
			g.Algo.Name, len(order), len(g.Tasks))
	}
	return order, nil
}

// CriticalPathLen returns the length (in tasks) of the longest dependency
// chain — a lower bound on sequential depth used by reports and tests.
func (g *Graph) CriticalPathLen() int {
	order, err := g.TopoOrder()
	if err != nil {
		return -1
	}
	depth := make([]int, len(g.Tasks))
	longest := 0
	for _, t := range order {
		d := 1
		for _, on := range g.Deps[t] {
			if depth[on]+1 > d {
				d = depth[on] + 1
			}
		}
		depth[t] = d
		if d > longest {
			longest = d
		}
	}
	return longest
}
