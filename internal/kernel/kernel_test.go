package kernel

import (
	"bytes"
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/talloc"
	"github.com/resccl/resccl/internal/topo"
)

func generate(t *testing.T, algo *ir.Algorithm, nNodes, gpn int) *Kernel {
	t.Helper()
	g, err := dag.Build(algo, topo.New(nNodes, gpn, topo.A100()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.Schedule(g, sched.PolicyHPDS)
	if err != nil {
		t.Fatal(err)
	}
	w := talloc.EstimateWindows(p, 1<<20, 8)
	a := talloc.StateBased(p, w)
	k, err := Generate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestGenerateHM(t *testing.T) {
	algo, err := expert.HMAllReduce(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	k := generate(t, algo, 2, 8)
	if k.Mode != ModeDirect {
		t.Error("generated kernels must be direct")
	}
	// Table 3, Topo2: 16 TBs per GPU for the expert AllReduce.
	if got := k.MaxTBsPerRank(); got != 16 {
		t.Errorf("TBs per GPU = %d, want 16 (Table 3 Topo2)", got)
	}
	if k.TotalSlots() != 2*len(k.Graph.Tasks) {
		t.Errorf("slots = %d, want %d", k.TotalSlots(), 2*len(k.Graph.Tasks))
	}
	for _, tb := range k.TBs {
		if tb.Order != TaskMajor {
			t.Error("ResCCL TBs must be task-major")
		}
	}
}

func TestLinkPredsRespectWindows(t *testing.T) {
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := generate(t, algo, 2, 4)
	g := k.Graph
	// Replay the link schedule: with a sliding window W per link, at
	// most W tasks may be "open" (started but with their window
	// predecessor finished) — equivalently, task i on a link must have
	// preds pointing exactly W positions back.
	perLink := map[topo.LinkID][]ir.TaskID{}
	order := make([]ir.TaskID, len(g.Tasks))
	// Kernel preserves pipeline position order in LinkPreds; rebuild by
	// TaskID order of the original schedule is unavailable here, so
	// verify the weaker but sufficient invariant: every link pred of t
	// shares a link with t.
	_ = perLink
	_ = order
	for t2, preds := range k.LinkPreds {
		for _, p := range preds {
			if !g.SharesLink(ir.TaskID(t2), p) {
				t.Fatalf("task %d has link pred %d with no shared link", t2, p)
			}
		}
	}
}

func TestInstrOrders(t *testing.T) {
	tb := &TBProgram{Order: TaskMajor, Slots: make([]ir.Primitive, 3)}
	// Task-major with 2 micro-batches: slot0/mb0, slot0/mb1, slot1/mb0…
	wantTask := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	for k, w := range wantTask {
		slot, mb := tb.Instr(k, 2)
		if slot != w[0] || mb != w[1] {
			t.Fatalf("task-major instr %d = (%d,%d), want %v", k, slot, mb, w)
		}
	}
	tb.Order = MBMajor
	// MB-major: slot0/mb0, slot1/mb0, slot2/mb0, slot0/mb1…
	wantMB := [][2]int{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for k, w := range wantMB {
		slot, mb := tb.Instr(k, 2)
		if slot != w[0] || mb != w[1] {
			t.Fatalf("mb-major instr %d = (%d,%d), want %v", k, slot, mb, w)
		}
	}
	if tb.NInstr(2) != 6 {
		t.Errorf("NInstr = %d, want 6", tb.NInstr(2))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	algo, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	k := generate(t, algo, 1, 4)

	// Wrong rank on a primitive.
	bad := *k
	badTBs := make([]*TBProgram, len(k.TBs))
	for i, tb := range k.TBs {
		cp := *tb
		cp.Slots = append([]ir.Primitive(nil), tb.Slots...)
		badTBs[i] = &cp
	}
	bad.TBs = badTBs
	bad.TBs[0].Slots[0].Rank++
	if err := Validate(&bad); err == nil {
		t.Error("wrong-rank primitive should fail validation")
	}

	// Missing primitive.
	bad2 := *k
	badTBs2 := make([]*TBProgram, len(k.TBs))
	copy(badTBs2, k.TBs)
	cp := *k.TBs[0]
	cp.Slots = cp.Slots[:len(cp.Slots)-1]
	badTBs2[0] = &cp
	bad2.TBs = badTBs2
	if err := Validate(&bad2); err == nil {
		t.Error("missing primitive should fail validation")
	}

	// Self link-pred.
	bad3 := *k
	bad3.LinkPreds = append([][]ir.TaskID(nil), k.LinkPreds...)
	bad3.LinkPreds[0] = []ir.TaskID{0}
	if err := Validate(&bad3); err == nil {
		t.Error("self link-pred should fail validation")
	}
}

func TestTBsOnRank(t *testing.T) {
	algo, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	k := generate(t, algo, 1, 4)
	total := 0
	for r := 0; r < 4; r++ {
		total += len(k.TBsOnRank(ir.Rank(r)))
	}
	if total != k.NTBs() {
		t.Errorf("per-rank TB counts sum to %d, want %d", total, k.NTBs())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.New(2, 4, topo.A100())
	k := generate(t, algo, 2, 4)

	var buf bytes.Buffer
	if err := Save(k, tp, &buf); err != nil {
		t.Fatal(err)
	}
	k2, tp2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tp2.NRanks() != tp.NRanks() || tp2.Profile.Name != tp.Profile.Name {
		t.Error("topology changed through round trip")
	}
	if k2.NTBs() != k.NTBs() || k2.Mode != k.Mode || k2.MBBarrier != k.MBBarrier {
		t.Error("kernel shape changed through round trip")
	}
	for i, tb := range k.TBs {
		tb2 := k2.TBs[i]
		if tb2.Rank != tb.Rank || tb2.Order != tb.Order || len(tb2.Slots) != len(tb.Slots) {
			t.Fatalf("TB %d changed: %+v vs %+v", i, tb2, tb)
		}
		for j := range tb.Slots {
			if tb.Slots[j] != tb2.Slots[j] {
				t.Fatalf("TB %d slot %d changed: %v vs %v", i, j, tb2.Slots[j], tb.Slots[j])
			}
		}
	}
	for i := range k.LinkPreds {
		if len(k.LinkPreds[i]) != len(k2.LinkPreds[i]) {
			t.Fatalf("link preds of task %d changed", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, _, err := Load(strings.NewReader(`{"version": 1, "topology": {"nNodes": 0}}`)); err == nil {
		t.Error("invalid topology should fail")
	}
}
