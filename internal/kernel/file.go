package kernel

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Plan file format: a compiled kernel serialized together with the
// algorithm and topology it was compiled for, so the offline compiler
// can run once and the runtime (or another host) can load the exact
// executable plan later — the deployment model of §5.1's three-layer
// architecture. Task identity is stable because dependency analysis
// assigns TaskIDs in deterministic (step, chunk, src, dst) order.

// FileVersion is the current plan-file schema version.
const FileVersion = 1

type fileTransfer struct {
	Src   int  `json:"src"`
	Dst   int  `json:"dst"`
	Step  int  `json:"step"`
	Chunk int  `json:"chunk"`
	RRC   bool `json:"rrc,omitempty"`
}

type fileSlot struct {
	Task int `json:"task"`
	Kind int `json:"kind"`
}

type fileTB struct {
	ID    int        `json:"id"`
	Rank  int        `json:"rank"`
	Order int        `json:"order"`
	Label string     `json:"label,omitempty"`
	Slots []fileSlot `json:"slots"`
}

type fileProfile struct {
	Name         string  `json:"name"`
	NVLinkBW     float64 `json:"nvlinkBW"`
	NICBW        float64 `json:"nicBW"`
	LatIntraNS   int64   `json:"latIntraNS"`
	LatInterNS   int64   `json:"latInterNS"`
	LatCrossNS   int64   `json:"latCrossRackNS"`
	TBCapIntra   float64 `json:"tbCapIntra"`
	TBCapInter   float64 `json:"tbCapInter"`
	Gamma        float64 `json:"gamma"`
	InterpNS     int64   `json:"interpCostNS"`
	KernelLoadNS int64   `json:"kernelLoadNS"`
}

type fileTopo struct {
	Profile        fileProfile `json:"profile"`
	NNodes         int         `json:"nNodes"`
	GPUsPerNode    int         `json:"gpusPerNode"`
	NICsPerNode    int         `json:"nicsPerNode"`
	ServersPerRack int         `json:"serversPerRack"`
}

type fileAlgo struct {
	Name        string         `json:"name"`
	Op          string         `json:"op"`
	NRanks      int            `json:"nRanks"`
	NChunks     int            `json:"nChunks"`
	NChannels   int            `json:"nChannels,omitempty"`
	NWarps      int            `json:"nWarps,omitempty"`
	StageBounds []int          `json:"stageBounds,omitempty"`
	Transfers   []fileTransfer `json:"transfers"`
}

type planFile struct {
	Version   int      `json:"version"`
	Name      string   `json:"name"`
	Mode      int      `json:"mode"`
	MBBarrier bool     `json:"mbBarrier,omitempty"`
	Topology  fileTopo `json:"topology"`
	Algorithm fileAlgo `json:"algorithm"`
	TBs       []fileTB `json:"tbs"`
	SendTB    []int    `json:"sendTB"`
	RecvTB    []int    `json:"recvTB"`
	LinkPreds [][]int  `json:"linkPreds,omitempty"`
	TaskSub   []int    `json:"taskSub,omitempty"`
	TaskPos   []int    `json:"taskPos,omitempty"`
}

// Save serializes a validated kernel and its topology as JSON.
func Save(k *Kernel, t *topo.Topology, w io.Writer) error {
	if err := Validate(k); err != nil {
		return fmt.Errorf("kernel: refusing to save invalid kernel: %w", err)
	}
	algo := k.Graph.Algo
	pf := planFile{
		Version:   FileVersion,
		Name:      k.Name,
		Mode:      int(k.Mode),
		MBBarrier: k.MBBarrier,
		Topology: fileTopo{
			Profile: fileProfile{
				Name:         t.Profile.Name,
				NVLinkBW:     t.NVLinkBW,
				NICBW:        t.NICBW,
				LatIntraNS:   t.LatIntra.Nanoseconds(),
				LatInterNS:   t.LatInter.Nanoseconds(),
				LatCrossNS:   t.LatCrossRack.Nanoseconds(),
				TBCapIntra:   t.TBCapIntra,
				TBCapInter:   t.TBCapInter,
				Gamma:        t.Gamma,
				InterpNS:     t.InterpCost.Nanoseconds(),
				KernelLoadNS: t.KernelLoad.Nanoseconds(),
			},
			NNodes:         t.NNodes,
			GPUsPerNode:    t.GPUsPerNode,
			NICsPerNode:    t.NICsPerNode,
			ServersPerRack: t.ServersPerRack,
		},
		Algorithm: fileAlgo{
			Name:      algo.Name,
			Op:        algo.Op.String(),
			NRanks:    algo.NRanks,
			NChunks:   algo.NChunks,
			NChannels: algo.NChannels,
			NWarps:    algo.NWarps,
		},
		SendTB:  k.SendTB,
		RecvTB:  k.RecvTB,
		TaskSub: k.TaskSub,
		TaskPos: k.TaskPos,
	}
	for _, s := range algo.StageBounds {
		pf.Algorithm.StageBounds = append(pf.Algorithm.StageBounds, int(s))
	}
	for _, tr := range algo.Sorted() {
		pf.Algorithm.Transfers = append(pf.Algorithm.Transfers, fileTransfer{
			Src: int(tr.Src), Dst: int(tr.Dst), Step: int(tr.Step), Chunk: int(tr.Chunk),
			RRC: tr.Type == ir.CommRecvReduceCopy,
		})
	}
	for _, tb := range k.TBs {
		ftb := fileTB{ID: tb.ID, Rank: int(tb.Rank), Order: int(tb.Order), Label: tb.Label}
		for _, p := range tb.Slots {
			ftb.Slots = append(ftb.Slots, fileSlot{Task: int(p.Task.ID), Kind: int(p.Kind)})
		}
		pf.TBs = append(pf.TBs, ftb)
	}
	for _, preds := range k.LinkPreds {
		row := make([]int, len(preds))
		for i, p := range preds {
			row[i] = int(p)
		}
		pf.LinkPreds = append(pf.LinkPreds, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pf)
}

// Load reads a plan file, rebuilds the dependency graph (TaskIDs are
// deterministic for a given algorithm/topology pair) and returns a
// validated kernel together with the topology it targets.
func Load(r io.Reader) (*Kernel, *topo.Topology, error) {
	var pf planFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&pf); err != nil {
		return nil, nil, fmt.Errorf("kernel: decoding plan file: %w", err)
	}
	if pf.Version != FileVersion {
		return nil, nil, fmt.Errorf("kernel: unsupported plan file version %d (want %d)", pf.Version, FileVersion)
	}
	p := pf.Topology.Profile
	prof := topo.Profile{
		Name:         p.Name,
		NVLinkBW:     p.NVLinkBW,
		NICBW:        p.NICBW,
		LatIntra:     time.Duration(p.LatIntraNS),
		LatInter:     time.Duration(p.LatInterNS),
		LatCrossRack: time.Duration(p.LatCrossNS),
		TBCapIntra:   p.TBCapIntra,
		TBCapInter:   p.TBCapInter,
		Gamma:        p.Gamma,
		InterpCost:   time.Duration(p.InterpNS),
		KernelLoad:   time.Duration(p.KernelLoadNS),
	}
	if pf.Topology.NNodes < 1 || pf.Topology.GPUsPerNode < 1 ||
		pf.Topology.NICsPerNode < 1 || pf.Topology.ServersPerRack < 1 {
		return nil, nil, fmt.Errorf("kernel: plan file has invalid topology dimensions")
	}
	tp := topo.New(pf.Topology.NNodes, pf.Topology.GPUsPerNode, prof,
		topo.WithNICs(pf.Topology.NICsPerNode),
		topo.WithServersPerRack(pf.Topology.ServersPerRack))

	op, err := ir.ParseOpType(pf.Algorithm.Op)
	if err != nil {
		return nil, nil, err
	}
	algo := &ir.Algorithm{
		Name:      pf.Algorithm.Name,
		Op:        op,
		NRanks:    pf.Algorithm.NRanks,
		NChunks:   pf.Algorithm.NChunks,
		NChannels: pf.Algorithm.NChannels,
		NWarps:    pf.Algorithm.NWarps,
	}
	for _, s := range pf.Algorithm.StageBounds {
		algo.StageBounds = append(algo.StageBounds, ir.Step(s))
	}
	for _, tr := range pf.Algorithm.Transfers {
		ct := ir.CommRecv
		if tr.RRC {
			ct = ir.CommRecvReduceCopy
		}
		algo.Transfers = append(algo.Transfers, ir.Transfer{
			Src: ir.Rank(tr.Src), Dst: ir.Rank(tr.Dst),
			Step: ir.Step(tr.Step), Chunk: ir.ChunkID(tr.Chunk), Type: ct,
		})
	}
	g, err := dag.Build(algo, tp)
	if err != nil {
		return nil, nil, fmt.Errorf("kernel: rebuilding dependency graph: %w", err)
	}
	k := &Kernel{
		Name:      pf.Name,
		Graph:     g,
		Mode:      ExecMode(pf.Mode),
		MBBarrier: pf.MBBarrier,
		SendTB:    pf.SendTB,
		RecvTB:    pf.RecvTB,
		LinkPreds: make([][]ir.TaskID, len(g.Tasks)),
		TaskSub:   pf.TaskSub,
		TaskPos:   pf.TaskPos,
	}
	for i, row := range pf.LinkPreds {
		if i >= len(k.LinkPreds) {
			return nil, nil, fmt.Errorf("kernel: plan file has link preds for %d tasks, graph has %d", len(pf.LinkPreds), len(g.Tasks))
		}
		for _, p := range row {
			k.LinkPreds[i] = append(k.LinkPreds[i], ir.TaskID(p))
		}
	}
	for _, ftb := range pf.TBs {
		tb := &TBProgram{ID: ftb.ID, Rank: ir.Rank(ftb.Rank), Order: MBOrder(ftb.Order), Label: ftb.Label}
		for _, sl := range ftb.Slots {
			if sl.Task < 0 || sl.Task >= len(g.Tasks) {
				return nil, nil, fmt.Errorf("kernel: plan file references unknown task %d", sl.Task)
			}
			task := g.Tasks[sl.Task]
			kind := ir.PrimKind(sl.Kind)
			prim := ir.Primitive{Task: task, Kind: kind, Rank: task.Src, Peer: task.Dst}
			if kind != ir.PrimSend {
				prim.Rank, prim.Peer = task.Dst, task.Src
			}
			tb.Slots = append(tb.Slots, prim)
		}
		k.TBs = append(k.TBs, tb)
	}
	if err := Validate(k); err != nil {
		return nil, nil, fmt.Errorf("kernel: loaded plan invalid: %w", err)
	}
	return k, tp, nil
}
