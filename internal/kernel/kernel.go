// Package kernel defines the executable communication plan — the
// "lightweight kernel" of §4.5 — and its generation from a scheduled,
// TB-allocated pipeline.
//
// A kernel is organised along the paper's three dimensions: the rank
// dimension (which primitives each GPU executes), the TB dimension
// (which primitives each thread block executes), and the pipeline
// dimension (the per-TB slot order; each slot cycles through all of its
// micro-batch invocations). Baseline backends produce the same Kernel
// structure with different slot orders and run it in interpreted mode,
// which charges the runtime-interpreter overhead per primitive
// invocation (§2.2, Fig. 3).
package kernel

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/talloc"
)

// ExecMode selects how the runtime drives the plan.
type ExecMode int

// Execution modes.
const (
	// ModeDirect executes a generated kernel: no per-primitive parsing
	// cost, one-time load cost per thread block.
	ModeDirect ExecMode = iota
	// ModeInterpreted emulates existing backends' runtime interpreter:
	// every primitive invocation pays the profile's InterpCost.
	ModeInterpreted
)

func (m ExecMode) String() string {
	if m == ModeDirect {
		return "direct"
	}
	return "interpreted"
}

// MBOrder is the loop structure of a TB program.
type MBOrder int

// Micro-batch loop orders.
const (
	// TaskMajor iterates slots outermost: each slot (primitive) runs all
	// micro-batch invocations before the TB advances — ResCCL's
	// task-level execution (§3).
	TaskMajor MBOrder = iota
	// MBMajor iterates micro-batches outermost: the TB executes its
	// whole slot list for micro-batch 0, then 1, … — the lazy
	// algorithm-level (and per-stage) execution of existing backends.
	MBMajor
)

func (o MBOrder) String() string {
	if o == TaskMajor {
		return "task-major"
	}
	return "mb-major"
}

// TBProgram is the instruction stream of one thread block.
type TBProgram struct {
	ID    int
	Rank  ir.Rank
	Order MBOrder
	// Slots are the primitives in pipeline order.
	Slots []ir.Primitive
	// Label describes the TB's role for traces ("0→1/send",
	// "stage2/3→7/recv", …).
	Label string
}

// NInstr returns the number of primitive invocations the TB executes for
// nMB micro-batches.
func (p *TBProgram) NInstr(nMB int) int { return len(p.Slots) * nMB }

// Instr returns the k-th instruction (slot, micro-batch) under the TB's
// loop order. k ranges over [0, NInstr).
func (p *TBProgram) Instr(k, nMB int) (slot, mb int) {
	if p.Order == TaskMajor {
		return k / nMB, k % nMB
	}
	return k % len(p.Slots), k / len(p.Slots)
}

// Kernel is a complete executable plan for one collective on one
// topology.
type Kernel struct {
	Name  string
	Graph *dag.Graph
	Mode  ExecMode
	TBs   []*TBProgram

	// SendTB[t] / RecvTB[t] locate task t's two primitives.
	SendTB, RecvTB []int

	// LinkPreds[t] lists tasks that must complete all micro-batch
	// invocations before task t may start: ResCCL's serialization of
	// communication-dependent tasks (§3). Nil for baseline kernels,
	// which instead contend on links at runtime.
	LinkPreds [][]ir.TaskID

	// MBBarrier marks lazy algorithm-level execution (§2.1): the
	// backend launches one pass per micro-batch, so no invocation of
	// micro-batch i may start before every task has finished micro-batch
	// i−1. Stage-level and task-level kernels pipeline across
	// micro-batches and leave this false.
	MBBarrier bool

	// Protocol is the transport protocol tier the plan runs under
	// (LL/LL128/Simple). The zero value (ProtoAuto) simulates as Simple;
	// the tier is resolved before compilation, so cached plans never mix
	// tiers.
	Protocol ir.Protocol

	// TaskSub[t] / TaskPos[t] echo the schedule's sub-pipeline index and
	// global pipeline position of task t, so the runtime can degrade
	// (serialize) one sub-pipeline without consulting the schedule. Nil
	// for baseline kernels, which have no sub-pipeline structure.
	TaskSub, TaskPos []int
}

// NTBs returns the number of thread blocks in the plan.
func (k *Kernel) NTBs() int { return len(k.TBs) }

// TBsOnRank returns the TB IDs hosted on rank r, for SM accounting.
func (k *Kernel) TBsOnRank(r ir.Rank) []int {
	var out []int
	for _, tb := range k.TBs {
		if tb.Rank == r {
			out = append(out, tb.ID)
		}
	}
	return out
}

// MaxTBsPerRank returns the largest per-rank TB count — the per-GPU SM
// footprint reported in Table 3.
func (k *Kernel) MaxTBsPerRank() int {
	counts := make(map[ir.Rank]int)
	m := 0
	for _, tb := range k.TBs {
		counts[tb.Rank]++
		if counts[tb.Rank] > m {
			m = counts[tb.Rank]
		}
	}
	return m
}

// Generate lowers a scheduled, TB-allocated pipeline into a direct
// ResCCL kernel (Fig. 5(f)): per TB, the assigned primitives ordered by
// global pipeline position, task-major micro-batch looping, and
// link-predecessor serialization derived from the schedule.
func Generate(p *sched.Pipeline, a *talloc.Assignment) (*Kernel, error) {
	g := p.Graph
	if err := talloc.Validate(g, a); err != nil {
		return nil, err
	}
	k := &Kernel{
		Name:      g.Algo.Name,
		Graph:     g,
		Mode:      ModeDirect,
		SendTB:    append([]int(nil), a.SendTB...),
		RecvTB:    append([]int(nil), a.RecvTB...),
		LinkPreds: make([][]ir.TaskID, len(g.Tasks)),
		TaskSub:   append([]int(nil), p.TaskSub...),
		TaskPos:   append([]int(nil), p.TaskPos...),
	}
	k.TBs = make([]*TBProgram, len(a.TBs))
	for i, tb := range a.TBs {
		label := ""
		for j, ep := range tb.Endpoints {
			if j > 0 {
				label += "+"
			}
			label += ep.String()
		}
		k.TBs[i] = &TBProgram{ID: i, Rank: tb.Rank, Order: TaskMajor, Label: label}
	}
	// Fill slots in global pipeline position order so every TB's slot
	// sequence is a subsequence of one total order — this guarantees the
	// rendezvous graph is deadlock-free.
	for _, t := range p.OrderedTasks() {
		task := g.Tasks[t]
		send, recv := task.Primitives()
		k.TBs[a.SendTB[t]].Slots = append(k.TBs[a.SendTB[t]].Slots, send)
		k.TBs[a.RecvTB[t]].Slots = append(k.TBs[a.RecvTB[t]].Slots, recv)
	}
	// Link predecessors: tasks occupy each communication link in pipeline
	// position order through a sliding window of LinkWindows[l] slots (the
	// Fig. 4 saturation point): the i-th task on a link waits until the
	// (i−window)-th has drained all its micro-batches, so at most `window`
	// tasks drive the link concurrently and aggregate TB capability never
	// exceeds the link's bandwidth.
	linkHist := make(map[int32][]ir.TaskID)
	for _, t := range p.OrderedTasks() {
		var preds []ir.TaskID
		for _, l := range g.Links[t] {
			hist := append(linkHist[int32(l)], t)
			linkHist[int32(l)] = hist
			w := g.LinkWindows[l]
			if w < 1 {
				w = 1
			}
			if len(hist) > w {
				preds = append(preds, hist[len(hist)-1-w])
			}
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		preds = dedupTasks(preds)
		k.LinkPreds[t] = preds
	}
	if err := Validate(k); err != nil {
		return nil, fmt.Errorf("kernel: generated kernel invalid: %w", err)
	}
	return k, nil
}

func dedupTasks(ts []ir.TaskID) []ir.TaskID {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks kernel invariants: every task's send primitive appears
// exactly once in its SendTB on the source rank, its receive primitive
// exactly once in its RecvTB on the destination rank, and no TB contains
// primitives for tasks not assigned to it.
func Validate(k *Kernel) error {
	g := k.Graph
	if !k.Protocol.Valid() {
		return fmt.Errorf("kernel %q: undefined protocol tier %d", k.Name, int(k.Protocol))
	}
	if len(k.SendTB) != len(g.Tasks) || len(k.RecvTB) != len(g.Tasks) {
		return fmt.Errorf("kernel %q: task/TB table size mismatch", k.Name)
	}
	sendSeen := make([]int, len(g.Tasks))
	recvSeen := make([]int, len(g.Tasks))
	for _, tb := range k.TBs {
		if len(tb.Slots) == 0 {
			return fmt.Errorf("kernel %q: TB %d (%s) has no slots", k.Name, tb.ID, tb.Label)
		}
		for _, prim := range tb.Slots {
			t := prim.Task.ID
			if int(t) < 0 || int(t) >= len(g.Tasks) {
				return fmt.Errorf("kernel %q: TB %d references unknown task %d", k.Name, tb.ID, t)
			}
			if prim.Rank != tb.Rank {
				return fmt.Errorf("kernel %q: TB %d on rank %d holds primitive for rank %d",
					k.Name, tb.ID, tb.Rank, prim.Rank)
			}
			switch prim.Kind {
			case ir.PrimSend:
				sendSeen[t]++
				if k.SendTB[t] != tb.ID {
					return fmt.Errorf("kernel %q: task %d send primitive in TB %d, table says %d",
						k.Name, t, tb.ID, k.SendTB[t])
				}
			case ir.PrimRecv, ir.PrimRecvReduceCopy:
				recvSeen[t]++
				if k.RecvTB[t] != tb.ID {
					return fmt.Errorf("kernel %q: task %d recv primitive in TB %d, table says %d",
						k.Name, t, tb.ID, k.RecvTB[t])
				}
			}
		}
	}
	for t := range g.Tasks {
		if sendSeen[t] != 1 || recvSeen[t] != 1 {
			return fmt.Errorf("kernel %q: task %d has %d send / %d recv primitives (want 1/1)",
				k.Name, t, sendSeen[t], recvSeen[t])
		}
	}
	for t, preds := range k.LinkPreds {
		for _, p := range preds {
			if int(p) < 0 || int(p) >= len(g.Tasks) || int(p) == t {
				return fmt.Errorf("kernel %q: task %d has invalid link predecessor %d", k.Name, t, p)
			}
		}
	}
	return nil
}

// TotalSlots returns the total primitive count across TBs (each task
// contributes two).
func (k *Kernel) TotalSlots() int {
	n := 0
	for _, tb := range k.TBs {
		n += len(tb.Slots)
	}
	return n
}
