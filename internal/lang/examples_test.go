package lang

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/resccl/resccl/internal/collective"
)

// Every shipped .rcl example must compile and satisfy its operator's
// postcondition.
func TestShippedAlgorithmsCompileAndVerify(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "algorithms")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".rcl" {
			continue
		}
		n++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		algo, err := Compile(string(src))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := collective.Check(algo); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 5 {
		t.Fatalf("expected at least 5 shipped algorithms, found %d", n)
	}
}
