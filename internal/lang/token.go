// Package lang implements ResCCLang, the DSL of §4.2 / Appendix B:
// lexing, parsing into an AST, and evaluation into an ir.Algorithm.
//
// ResCCLang is a deliberately small, Python-flavoured language: a single
// `def ResCCLAlgo(<params>):` header followed by an indented body of
// assignments, `for ... in range(...)` loops, and `transfer(...)` calls.
// Algorithm designers (and synthesizers) express only the data-movement
// logic; channel and thread-block management is the backend's job.
package lang

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokIdent
	TokInt
	TokString
	TokDef     // def
	TokFor     // for
	TokIn      // in
	TokLParen  // (
	TokRParen  // )
	TokComma   // ,
	TokColon   // :
	TokAssign  // =
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "newline"
	case TokIndent:
		return "indent"
	case TokDedent:
		return "dedent"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokString:
		return "string"
	case TokDef:
		return "'def'"
	case TokFor:
		return "'for'"
	case TokIn:
		return "'in'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	case TokAssign:
		return "'='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokPercent:
		return "'%'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	// Text is the literal text for identifiers, integers and strings
	// (strings are unquoted).
	Text string
	// Int is the parsed value for TokInt.
	Int  int
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a ResCCLang front-end error carrying a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("resccclang:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
