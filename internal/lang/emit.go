package lang

import (
	"fmt"
	"strings"

	"github.com/resccl/resccl/internal/ir"
)

// Emit renders an algorithm as a ResCCLang program: the ResCCLAlgo
// header reconstructed from the algorithm's metadata followed by one
// transfer statement per transmission task in deterministic (step,
// chunk, src, dst) order. Emit is the inverse of Compile up to transfer
// multiset equality: Compile(Emit(a)) yields an algorithm with exactly
// a's transfers.
//
// Synthesizers use Emit to hand their plans to any ResCCLang-consuming
// toolchain; tests use it to check front-end round-tripping.
func Emit(a *ir.Algorithm) (string, error) {
	if err := a.Validate(); err != nil {
		return "", fmt.Errorf("lang: cannot emit invalid algorithm: %w", err)
	}
	wantChunks := a.NRanks
	if a.Op == ir.OpAllToAll {
		wantChunks = a.NRanks * a.NRanks
	}
	if a.NChunks != wantChunks {
		return "", fmt.Errorf("lang: ResCCLang fixes nChunks == %d for %v over %d ranks; algorithm %q has %d",
			wantChunks, a.Op, a.NRanks, a.Name, a.NChunks)
	}
	var b strings.Builder
	name := a.Name
	if name == "" {
		name = "Emitted"
	}
	fmt.Fprintf(&b, "def ResCCLAlgo(nRanks=%d, nChannels=%d, nWarps=%d, AlgoName=%q, OpType=%q):\n",
		a.NRanks, max(1, a.NChannels), max(1, a.NWarps), name, a.Op.String())
	for _, t := range a.Sorted() {
		fmt.Fprintf(&b, "    transfer(%d, %d, %d, %d, %s)\n", t.Src, t.Dst, t.Step, t.Chunk, t.Type)
	}
	return b.String(), nil
}
