package lang

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// exampleSeeds loads every shipped .rcl program as a fuzz seed, so the
// corpus always covers the constructs real algorithms use.
func exampleSeeds(f *testing.F) []string {
	f.Helper()
	dir := filepath.Join("..", "..", "examples", "algorithms")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading example corpus: %v", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rcl") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, string(src))
	}
	if len(out) == 0 {
		f.Fatalf("no .rcl examples found in %s", dir)
	}
	return out
}

// FuzzCompile feeds arbitrary source through the full front end: the
// invariant is that Compile either returns an error or a structurally
// valid algorithm — never a panic.
func FuzzCompile(f *testing.F) {
	f.Add(ringSrc)
	f.Add(hmSrc)
	for _, src := range exampleSeeds(f) {
		f.Add(src)
	}
	f.Add("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, recv)\n")
	f.Add("def ResCCLAlgo(nRanks=2, OpType=\"Allreduce\"):\n    for i in range(0, 1):\n        transfer(i, 1-i, 0, i, rrc)\n")
	f.Add("def ResCCLAlgo(")
	f.Add("x = ((((1))))")
	f.Add("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n\ttransfer(0, 1, 0, 0, recv)\n")
	f.Fuzz(func(t *testing.T, src string) {
		algo, err := Compile(src)
		if err == nil {
			if verr := algo.Validate(); verr != nil {
				t.Fatalf("Compile returned invalid algorithm: %v", verr)
			}
		}
	})
}

// FuzzRoundTrip checks parse → emit → parse: whenever source compiles
// to an emittable algorithm, recompiling the emitted program must give
// back the same header and transfer multiset.
func FuzzRoundTrip(f *testing.F) {
	f.Add(ringSrc)
	f.Add(hmSrc)
	for _, src := range exampleSeeds(f) {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		algo, err := Compile(src)
		if err != nil {
			return
		}
		emitted, err := Emit(algo)
		if err != nil {
			// Compile can produce algorithms outside ResCCLang's fixed
			// chunk convention; Emit refusing them is not a round-trip
			// failure.
			return
		}
		back, err := Compile(emitted)
		if err != nil {
			t.Fatalf("emitted program does not compile: %v\n%s", err, emitted)
		}
		if back.Name != algo.Name || back.Op != algo.Op ||
			back.NRanks != algo.NRanks || back.NChunks != algo.NChunks {
			t.Fatalf("round-trip changed header: %+v vs %+v", back, algo)
		}
		if !reflect.DeepEqual(back.Sorted(), algo.Sorted()) {
			t.Fatalf("round-trip changed transfers:\n%v\nvs\n%v", back.Sorted(), algo.Sorted())
		}
	})
}
