package lang

import "testing"

// FuzzCompile feeds arbitrary source through the full front end: the
// invariant is that Compile either returns an error or a structurally
// valid algorithm — never a panic.
func FuzzCompile(f *testing.F) {
	f.Add(ringSrc)
	f.Add(hmSrc)
	f.Add("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, recv)\n")
	f.Add("def ResCCLAlgo(nRanks=2, OpType=\"Allreduce\"):\n    for i in range(0, 1):\n        transfer(i, 1-i, 0, i, rrc)\n")
	f.Add("def ResCCLAlgo(")
	f.Add("x = ((((1))))")
	f.Add("def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n\ttransfer(0, 1, 0, 0, recv)\n")
	f.Fuzz(func(t *testing.T, src string) {
		algo, err := Compile(src)
		if err == nil {
			if verr := algo.Validate(); verr != nil {
				t.Fatalf("Compile returned invalid algorithm: %v", verr)
			}
		}
	})
}
