package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed ResCCLang algorithm definition: the ResCCLAlgo
// header parameters and the statement body.
type Program struct {
	// Params are the header parameters in declaration order.
	Params []Param
	Body   []Stmt
	// Line is the source line of the def header.
	Line int
}

// Param is one `name = value` parameter of the ResCCLAlgo header. Exactly
// one of Int/Str is meaningful depending on the parameter.
type Param struct {
	Name string
	// IsStr reports whether the parameter value was a string literal.
	IsStr bool
	Int   int
	Str   string
	Line  int
	Col   int
}

// Stmt is a ResCCLang statement: assignment, for loop, or transfer call.
type Stmt interface {
	stmtNode()
	// Pos returns the statement's source position.
	Pos() (line, col int)
}

// Assign is `id = exp`.
type Assign struct {
	Name      string
	Value     Expr
	Line, Col int
}

func (*Assign) stmtNode()         {}
func (s *Assign) Pos() (int, int) { return s.Line, s.Col }

// For is `for id in range(exprs...): body`. Range takes one to three
// arguments with Python semantics (stop | start,stop | start,stop,step).
type For struct {
	Var       string
	RangeArgs []Expr
	Body      []Stmt
	Line, Col int
}

func (*For) stmtNode()         {}
func (s *For) Pos() (int, int) { return s.Line, s.Col }

// TransferStmt is `transfer(src, dst, step, chunk, commType)`.
type TransferStmt struct {
	Args      []Expr // the four integer expressions
	CommType  string // "recv" or "rrc"
	Line, Col int
}

func (*TransferStmt) stmtNode()         {}
func (s *TransferStmt) Pos() (int, int) { return s.Line, s.Col }

// Expr is an integer expression.
type Expr interface {
	exprNode()
	// Pos returns the expression's source position.
	Pos() (line, col int)
	String() string
}

// IntLit is an integer literal.
type IntLit struct {
	Value     int
	Line, Col int
}

func (*IntLit) exprNode()         {}
func (e *IntLit) Pos() (int, int) { return e.Line, e.Col }
func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Value) }

// Ident is a variable reference.
type Ident struct {
	Name      string
	Line, Col int
}

func (*Ident) exprNode()         {}
func (e *Ident) Pos() (int, int) { return e.Line, e.Col }
func (e *Ident) String() string  { return e.Name }

// BinOp is `lhs op rhs` with op one of + - * / %.
type BinOp struct {
	Op        byte
	LHS, RHS  Expr
	Line, Col int
}

func (*BinOp) exprNode()         {}
func (e *BinOp) Pos() (int, int) { return e.Line, e.Col }
func (e *BinOp) String() string {
	return fmt.Sprintf("(%s %c %s)", e.LHS, e.Op, e.RHS)
}

// Neg is unary minus.
type Neg struct {
	Operand   Expr
	Line, Col int
}

func (*Neg) exprNode()         {}
func (e *Neg) Pos() (int, int) { return e.Line, e.Col }
func (e *Neg) String() string  { return "(-" + e.Operand.String() + ")" }

// String renders the program back to (normalised) ResCCLang source.
func (p *Program) String() string {
	var sb strings.Builder
	sb.WriteString("def ResCCLAlgo(")
	for i, par := range p.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		if par.IsStr {
			fmt.Fprintf(&sb, "%s=%q", par.Name, par.Str)
		} else {
			fmt.Fprintf(&sb, "%s=%d", par.Name, par.Int)
		}
	}
	sb.WriteString("):\n")
	writeStmts(&sb, p.Body, 1)
	return sb.String()
}

func writeStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case *Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", indent, st.Name, st.Value)
		case *For:
			args := make([]string, len(st.RangeArgs))
			for i, a := range st.RangeArgs {
				args[i] = a.String()
			}
			fmt.Fprintf(sb, "%sfor %s in range(%s):\n", indent, st.Var, strings.Join(args, ", "))
			writeStmts(sb, st.Body, depth+1)
		case *TransferStmt:
			args := make([]string, 0, len(st.Args)+1)
			for _, a := range st.Args {
				args = append(args, a.String())
			}
			args = append(args, st.CommType)
			fmt.Fprintf(sb, "%stransfer(%s)\n", indent, strings.Join(args, ", "))
		}
	}
}
