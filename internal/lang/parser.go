package lang

// Parse lexes and parses ResCCLang source into a Program. The grammar is
// the BNF of Appendix B:
//
//	def       ::= "def" "ResCCLAlgo" "(" paramList ")" ":" block
//	paramList ::= (param ("," param)*)?
//	param     ::= id "=" (int | string | opType)
//	block     ::= INDENT stat+ DEDENT
//	stat      ::= assign | for | transfer
//	assign    ::= id "=" exp NEWLINE
//	for       ::= "for" id "in" "range" "(" exp ("," exp){0,2} ")" ":" block
//	transfer  ::= "transfer" "(" exp "," exp "," exp "," exp "," commType ")" NEWLINE
//	exp       ::= term (("+"|"-") term)*
//	term      ::= unary (("*"|"/"|"%") unary)*
//	unary     ::= "-" unary | atom
//	atom      ::= int | id | "(" exp ")"
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, t.Col, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.pos++
	}
}

func (p *parser) parseProgram() (*Program, error) {
	p.skipNewlines()
	defTok, err := p.expect(TokDef)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if name.Text != "ResCCLAlgo" {
		return nil, errf(name.Line, name.Col, "expected function name 'ResCCLAlgo', found %q", name.Text)
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	prog := &Program{Line: defTok.Line}
	if p.cur().Kind != TokRParen {
		for {
			par, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, par)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	prog.Body = body
	p.skipNewlines()
	if t := p.cur(); t.Kind != TokEOF {
		return nil, errf(t.Line, t.Col, "unexpected %s after algorithm body", t)
	}
	return prog, nil
}

func (p *parser) parseParam() (Param, error) {
	id, err := p.expect(TokIdent)
	if err != nil {
		return Param{}, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return Param{}, err
	}
	par := Param{Name: id.Text, Line: id.Line, Col: id.Col}
	switch t := p.cur(); t.Kind {
	case TokInt:
		p.pos++
		par.Int = t.Int
	case TokString:
		p.pos++
		par.IsStr = true
		par.Str = t.Text
	default:
		return Param{}, errf(t.Line, t.Col, "parameter %s: expected integer or string value, found %s", id.Text, t)
	}
	return par, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokIndent); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		p.skipNewlines()
		if p.accept(TokDedent) {
			break
		}
		if p.cur().Kind == TokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 0 {
		t := p.cur()
		return nil, errf(t.Line, t.Col, "empty block")
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokFor:
		return p.parseFor()
	case TokIdent:
		if t.Text == "transfer" {
			return p.parseTransfer()
		}
		return p.parseAssign()
	default:
		return nil, errf(t.Line, t.Col, "expected statement, found %s", t)
	}
}

func (p *parser) parseAssign() (Stmt, error) {
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Assign{Name: id.Text, Value: val, Line: id.Line, Col: id.Col}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	forTok, err := p.expect(TokFor)
	if err != nil {
		return nil, err
	}
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIn); err != nil {
		return nil, err
	}
	rng, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if rng.Text != "range" {
		return nil, errf(rng.Line, rng.Col, "expected 'range', found %q", rng.Text)
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.accept(TokComma) {
			break
		}
	}
	if len(args) > 3 {
		return nil, errf(forTok.Line, forTok.Col, "range() takes 1 to 3 arguments, got %d", len(args))
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &For{Var: id.Text, RangeArgs: args, Body: body, Line: forTok.Line, Col: forTok.Col}, nil
}

func (p *parser) parseTransfer() (Stmt, error) {
	kw, err := p.expect(TokIdent) // "transfer"
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &TransferStmt{Line: kw.Line, Col: kw.Col}
	for i := 0; i < 4; i++ {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Args = append(st.Args, e)
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
	}
	ct := p.cur()
	switch ct.Kind {
	case TokIdent, TokString:
		p.pos++
	default:
		return nil, errf(ct.Line, ct.Col, "expected comm type ('recv' or 'rrc'), found %s", ct)
	}
	if ct.Text != "recv" && ct.Text != "rrc" {
		return nil, errf(ct.Line, ct.Col, "unknown comm type %q (want 'recv' or 'rrc')", ct.Text)
	}
	st.CommType = ct.Text
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return st, nil
}

// Expression parsing with standard precedence: (* / %) over (+ -).

func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op byte
		switch t.Kind {
		case TokPlus:
			op = '+'
		case TokMinus:
			op = '-'
		default:
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		lhs = &BinOp{Op: op, LHS: lhs, RHS: rhs, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op byte
		switch t.Kind {
		case TokStar:
			op = '*'
		case TokSlash:
			op = '/'
		case TokPercent:
			op = '%'
		default:
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &BinOp{Op: op, LHS: lhs, RHS: rhs, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.cur(); t.Kind == TokMinus {
		p.pos++
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{Operand: operand, Line: t.Line, Col: t.Col}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		return &IntLit{Value: t.Int, Line: t.Line, Col: t.Col}, nil
	case TokIdent:
		p.pos++
		return &Ident{Name: t.Text, Line: t.Line, Col: t.Col}, nil
	case TokLParen:
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
	}
}
