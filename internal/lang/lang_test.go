package lang

import (
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/ir"
)

// ringSrc is the ring AllGather of Fig. 5(a), written in ResCCLang.
const ringSrc = `
# Ring AllGather, N ranks.
def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
    N = 4
    for r in range(0, N):
        offset = r
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (offset-step)%N, recv)
`

// hmSrc is the paper's Fig. 16 program: HM AllReduce for 32 GPUs over 4
// nodes, transcribed verbatim (modulo whitespace).
const hmSrc = `
def ResCCLAlgo(nRanks=32, nChannels=4, nWarps=16, AlgoName="HM", OpType="Allreduce", GPUPerNode=8, NICPerNode=8):
    nNodes = 4
    nGpusperNode = 8
    nChunks = nNodes * nGpusperNode
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = baseStep * (nGpusperNode - 1) + offset
                    transfer(srcRank, dstRank, step, (dstRank + baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + baseStep
                transfer(srcRank, dstRank, step, (srcRank + nChunks - baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + nNodes - 1 + baseStep
                chunkId = (srcRank + nChunks - (baseStep + nNodes - 1) * nGpusperNode) % nChunks
                transfer(srcRank, dstRank, step, chunkId, recv)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = nNodes * (nGpusperNode - 1) + 2 * nNodes - 2 + baseStep
                    transfer(srcRank, dstRank, step, (srcRank + baseStep * nGpusperNode) % nChunks, recv)
`

func TestCompileRing(t *testing.T) {
	algo, err := Compile(ringSrc)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name != "Ring" || algo.Op != ir.OpAllGather || algo.NRanks != 4 {
		t.Fatalf("header mismatch: %+v", algo)
	}
	if len(algo.Transfers) != 4*3 {
		t.Fatalf("transfer count = %d, want 12", len(algo.Transfers))
	}
	if err := collective.Check(algo); err != nil {
		t.Fatal(err)
	}
}

// The Fig. 16 program must evaluate to a correct 32-GPU AllReduce.
func TestCompileFig16HMAllReduce(t *testing.T) {
	algo, err := Compile(hmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if algo.NRanks != 32 || algo.Op != ir.OpAllReduce {
		t.Fatalf("header mismatch: %+v", algo)
	}
	// 4 nodes × 8 GPUs: intra RS = 32·4·7, inter RS = 32·3, inter AG =
	// 32·3, intra AG = 32·4·7.
	want := 32*4*7 + 32*3 + 32*3 + 32*4*7
	if len(algo.Transfers) != want {
		t.Fatalf("transfer count = %d, want %d", len(algo.Transfers), want)
	}
	if err := collective.Check(algo); err != nil {
		t.Fatal(err)
	}
}

func TestPythonModuloSemantics(t *testing.T) {
	// (offset - step) % N with offset-step negative must wrap positive.
	src := `
def ResCCLAlgo(nRanks=4, OpType="Allgather"):
    transfer(0, 1, 0, (0-1)%4, recv)
    transfer(1, 2, 0, (1-2)%4, recv)
`
	algo, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Transfers[0].Chunk != 3 {
		t.Errorf("(0-1)%%4 = %d, want 3", algo.Transfers[0].Chunk)
	}
}

func TestFloorDivision(t *testing.T) {
	if got := floorDiv(-7, 2); got != -4 {
		t.Errorf("floorDiv(-7,2) = %d, want -4", got)
	}
	if got := floorDiv(7, 2); got != 3 {
		t.Errorf("floorDiv(7,2) = %d, want 3", got)
	}
	if got := pyMod(-1, 4); got != 3 {
		t.Errorf("pyMod(-1,4) = %d, want 3", got)
	}
	if got := pyMod(-8, 4); got != 0 {
		t.Errorf("pyMod(-8,4) = %d, want 0", got)
	}
	if got := pyMod(5, -3); got != -1 {
		t.Errorf("pyMod(5,-3) = %d, want -1", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing def":    `transfer(0, 1, 0, 0, recv)`,
		"wrong name":     "def Foo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, recv)\n",
		"bad comm type":  "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, bogus)\n",
		"empty body":     "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n",
		"unbalanced":     "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = (1 + 2\n",
		"bad range":      "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    for i in range(0,1,2,3):\n        transfer(0, 1, 0, 0, recv)\n",
		"string in expr": "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = \"hello\"\n",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := map[string]string{
		"no nRanks":   "def ResCCLAlgo(OpType=\"Allgather\"):\n    transfer(0, 1, 0, 0, recv)\n",
		"no OpType":   "def ResCCLAlgo(nRanks=2):\n    transfer(0, 1, 0, 0, recv)\n",
		"bad param":   "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\", wat=3):\n    transfer(0, 1, 0, 0, recv)\n",
		"undef var":   "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, y, 0, 0, recv)\n",
		"div by zero": "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = 1/0\n    transfer(0, 1, 0, 0, recv)\n",
		"mod by zero": "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 1%0, 0, 0, recv)\n",
		"rank range":  "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 5, 0, 0, recv)\n",
		"self send":   "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    transfer(0, 0, 0, 0, recv)\n",
		"zero step":   "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    for i in range(0, 4, 0):\n        transfer(0, 1, 0, 0, recv)\n",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestHeaderParamsVisibleInBody(t *testing.T) {
	src := `
def ResCCLAlgo(nRanks=4, OpType="Allgather", GPUPerNode=2):
    for r in range(0, nRanks - 1):
        transfer(r, r + 1, 0, r, recv)
    x = GPUPerNode
`
	algo, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(algo.Transfers) != 3 {
		t.Fatalf("transfers = %d, want 3", len(algo.Transfers))
	}
}

func TestProgramStringRoundTrips(t *testing.T) {
	prog, err := Parse(ringSrc)
	if err != nil {
		t.Fatal(err)
	}
	rendered := prog.String()
	prog2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered program failed: %v\nsource:\n%s", err, rendered)
	}
	a1, err := Eval(prog)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Eval(prog2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Transfers) != len(a2.Transfers) {
		t.Fatalf("round trip changed transfer count: %d vs %d", len(a1.Transfers), len(a2.Transfers))
	}
	for i := range a1.Transfers {
		if a1.Transfers[i] != a2.Transfers[i] {
			t.Fatalf("round trip changed transfer %d: %v vs %v", i, a1.Transfers[i], a2.Transfers[i])
		}
	}
}

func TestImplicitLineJoining(t *testing.T) {
	src := "def ResCCLAlgo(nRanks=2,\n               OpType=\"Allgather\"):\n    transfer(0, 1,\n             0, 0, recv)\n"
	algo, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(algo.Transfers) != 1 {
		t.Fatalf("transfers = %d, want 1", len(algo.Transfers))
	}
}

func TestNegativeLiteralsAndPrecedence(t *testing.T) {
	src := `
def ResCCLAlgo(nRanks=8, OpType="Allgather"):
    x = 2 + 3 * 2
    y = (2 + 3) * 2 - x
    transfer(x - 8, y - 1, 0, 0, recv)
`
	algo, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := algo.Transfers[0]
	if tr.Src != 0 || tr.Dst != 1 {
		t.Fatalf("precedence broken: got %v", tr)
	}
}

func TestLexerRejectsJunk(t *testing.T) {
	if _, err := Lex("def ResCCLAlgo(nRanks=2) @"); err == nil {
		t.Error("expected lex error for '@'")
	}
	if _, err := Lex(`x = "unterminated`); err == nil {
		t.Error("expected lex error for unterminated string")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := strings.Join([]string{
		"# leading comment",
		"",
		"def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):  # trailing",
		"    # indented comment",
		"",
		"    transfer(0, 1, 0, 0, recv)  # another",
		"",
	}, "\n")
	algo, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(algo.Transfers) != 1 {
		t.Fatalf("transfers = %d, want 1", len(algo.Transfers))
	}
}

func TestEmitRoundTrip(t *testing.T) {
	orig, err := Compile(ringSrc)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Compile(src)
	if err != nil {
		t.Fatalf("re-compile of emitted source failed: %v\n%s", err, src)
	}
	if back.Name != orig.Name || back.Op != orig.Op || back.NRanks != orig.NRanks {
		t.Fatalf("header changed: %+v vs %+v", back, orig)
	}
	a, b := orig.Sorted(), back.Sorted()
	if len(a) != len(b) {
		t.Fatalf("transfer count changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d changed: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmitRejectsNonSquare(t *testing.T) {
	algo := &ir.Algorithm{
		Name: "x", Op: ir.OpAllGather, NRanks: 2, NChunks: 4,
		Transfers: []ir.Transfer{{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecv}},
	}
	if _, err := Emit(algo); err == nil {
		t.Error("nChunks != nRanks must be rejected")
	}
	if _, err := Emit(&ir.Algorithm{Name: "bad", NRanks: 2, NChunks: 2}); err == nil {
		t.Error("invalid algorithm must be rejected")
	}
}

func TestAllToAllInDSL(t *testing.T) {
	src := `
def ResCCLAlgo(nRanks=2, AlgoName="A2A", OpType="Alltoall"):
    transfer(0, 1, 0, 1, recv)
    transfer(1, 0, 0, 2, recv)
`
	algo, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if algo.NChunks != 4 {
		t.Fatalf("AllToAll nChunks = %d, want 4", algo.NChunks)
	}
	if err := collective.Check(algo); err != nil {
		t.Fatal(err)
	}
}

func TestErrorPositions(t *testing.T) {
	src := "def ResCCLAlgo(nRanks=2, OpType=\"Allgather\"):\n    x = 1\n    transfer(0, 9, 0, 0, recv)\n"
	_, err := Compile(src)
	if err == nil {
		t.Fatal("expected range error")
	}
	var perr *Error
	if !errorsAs(err, &perr) {
		t.Fatalf("error %T lacks position info", err)
	}
	if perr.Line != 3 {
		t.Errorf("error at line %d, want 3", perr.Line)
	}
}

func errorsAs(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
