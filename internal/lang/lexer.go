package lang

import (
	"strconv"
	"strings"
)

// Lex tokenises ResCCLang source. It handles '#' comments, blank lines,
// Python-style indentation (emitting Indent/Dedent tokens), and implicit
// line joining inside parentheses (a newline inside an unclosed '(' does
// not terminate the logical line, so long transfer(...) calls may wrap).
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1, indents: []int{0}}
	for !lx.eof() {
		if err := lx.lexLine(); err != nil {
			return nil, err
		}
	}
	// Close any dangling logical line and outstanding indents.
	if lx.emittedAny && lx.tokens[len(lx.tokens)-1].Kind != TokNewline {
		lx.emit(Token{Kind: TokNewline, Line: lx.line, Col: lx.col})
	}
	for len(lx.indents) > 1 {
		lx.indents = lx.indents[:len(lx.indents)-1]
		lx.emit(Token{Kind: TokDedent, Line: lx.line, Col: lx.col})
	}
	lx.emit(Token{Kind: TokEOF, Line: lx.line, Col: lx.col})
	return lx.tokens, nil
}

type lexer struct {
	src        string
	pos        int
	line, col  int
	indents    []int
	parenDepth int
	tokens     []Token
	emittedAny bool
}

func (lx *lexer) eof() bool { return lx.pos >= len(lx.src) }

func (lx *lexer) peek() byte { return lx.src[lx.pos] }

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) emit(t Token) {
	lx.tokens = append(lx.tokens, t)
	lx.emittedAny = true
}

// lexLine processes one physical line starting at line start: measures
// indentation, emits Indent/Dedent as needed, then tokens until newline.
func (lx *lexer) lexLine() error {
	// Measure indentation (spaces only; tabs count as 4).
	indent := 0
	for !lx.eof() {
		switch lx.peek() {
		case ' ':
			indent++
			lx.advance()
			continue
		case '\t':
			indent += 4
			lx.advance()
			continue
		}
		break
	}
	if lx.eof() {
		return nil
	}
	c := lx.peek()
	if c == '\n' || c == '\r' || c == '#' {
		// Blank line or comment-only line: skip entirely (no tokens).
		lx.skipRestOfLine()
		return nil
	}
	if lx.parenDepth == 0 {
		if err := lx.applyIndent(indent); err != nil {
			return err
		}
	}
	return lx.lexTokens()
}

func (lx *lexer) skipRestOfLine() {
	for !lx.eof() {
		if lx.advance() == '\n' {
			return
		}
	}
}

func (lx *lexer) applyIndent(indent int) error {
	cur := lx.indents[len(lx.indents)-1]
	switch {
	case indent > cur:
		lx.indents = append(lx.indents, indent)
		lx.emit(Token{Kind: TokIndent, Line: lx.line, Col: lx.col})
	case indent < cur:
		for len(lx.indents) > 1 && lx.indents[len(lx.indents)-1] > indent {
			lx.indents = lx.indents[:len(lx.indents)-1]
			lx.emit(Token{Kind: TokDedent, Line: lx.line, Col: lx.col})
		}
		if lx.indents[len(lx.indents)-1] != indent {
			return errf(lx.line, lx.col, "inconsistent indentation (%d spaces)", indent)
		}
	}
	return nil
}

// lexTokens scans tokens until the end of the logical line.
func (lx *lexer) lexTokens() error {
	for !lx.eof() {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '\n':
			lx.advance()
			if lx.parenDepth > 0 {
				// Implicit line joining: continue the logical line. The
				// continuation line's indentation is insignificant.
				lx.skipLeadingSpace()
				continue
			}
			lx.emit(Token{Kind: TokNewline, Line: lx.line, Col: lx.col})
			return nil
		case c == '#':
			lx.skipRestOfLine()
			if lx.parenDepth > 0 {
				continue
			}
			lx.emit(Token{Kind: TokNewline, Line: lx.line, Col: lx.col})
			return nil
		case isLetter(c):
			lx.lexIdent()
		case isDigit(c):
			if err := lx.lexInt(); err != nil {
				return err
			}
		case c == '"' || c == '\'':
			if err := lx.lexString(c); err != nil {
				return err
			}
		default:
			if err := lx.lexPunct(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (lx *lexer) skipLeadingSpace() {
	for !lx.eof() {
		c := lx.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			lx.advance()
			continue
		}
		return
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *lexer) lexIdent() {
	line, col := lx.line, lx.col
	var sb strings.Builder
	for !lx.eof() && (isLetter(lx.peek()) || isDigit(lx.peek())) {
		sb.WriteByte(lx.advance())
	}
	text := sb.String()
	kind := TokIdent
	switch text {
	case "def":
		kind = TokDef
	case "for":
		kind = TokFor
	case "in":
		kind = TokIn
	}
	lx.emit(Token{Kind: kind, Text: text, Line: line, Col: col})
}

func (lx *lexer) lexInt() error {
	line, col := lx.line, lx.col
	var sb strings.Builder
	for !lx.eof() && isDigit(lx.peek()) {
		sb.WriteByte(lx.advance())
	}
	v, err := strconv.Atoi(sb.String())
	if err != nil {
		return errf(line, col, "invalid integer %q", sb.String())
	}
	lx.emit(Token{Kind: TokInt, Text: sb.String(), Int: v, Line: line, Col: col})
	return nil
}

func (lx *lexer) lexString(quote byte) error {
	line, col := lx.line, lx.col
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.eof() {
			return errf(line, col, "unterminated string literal")
		}
		c := lx.advance()
		if c == quote {
			break
		}
		if c == '\n' {
			return errf(line, col, "newline in string literal")
		}
		sb.WriteByte(c)
	}
	lx.emit(Token{Kind: TokString, Text: sb.String(), Line: line, Col: col})
	return nil
}

func (lx *lexer) lexPunct() error {
	line, col := lx.line, lx.col
	c := lx.advance()
	var kind TokenKind
	switch c {
	case '(':
		kind = TokLParen
		lx.parenDepth++
	case ')':
		kind = TokRParen
		if lx.parenDepth > 0 {
			lx.parenDepth--
		}
	case ',':
		kind = TokComma
	case ':':
		kind = TokColon
	case '=':
		kind = TokAssign
	case '+':
		kind = TokPlus
	case '-':
		kind = TokMinus
	case '*':
		kind = TokStar
	case '/':
		kind = TokSlash
	case '%':
		kind = TokPercent
	default:
		return errf(line, col, "unexpected character %q", string(c))
	}
	lx.emit(Token{Kind: kind, Line: line, Col: col})
	return nil
}
