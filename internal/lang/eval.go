package lang

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// Evaluation limits. Algorithms are compiled offline, so the limits are
// generous, but a runaway loop in a hand-written DSL program must fail
// with a useful error rather than exhaust memory.
const (
	maxTransfers  = 64 << 20
	maxIterations = 512 << 20
)

// Header parameter names accepted by ResCCLAlgo, per the BNF.
var headerParams = map[string]bool{
	"nRanks":     true,
	"nChannels":  true,
	"nWarps":     true,
	"AlgoName":   true,
	"OpType":     true,
	"GPUPerNode": true,
	"NICPerNode": true,
}

// Eval executes a parsed ResCCLang program and returns the algorithm it
// denotes. Integer header parameters are visible in the body under their
// parameter names. Arithmetic follows Python semantics (floor division,
// sign-of-divisor modulo) because ResCCLang programs are written in the
// paper with Python-style `(offset - step) % N` wraparound indexing.
func Eval(prog *Program) (*ir.Algorithm, error) {
	algo := &ir.Algorithm{
		Name:      "ResCCLAlgo",
		Op:        ir.OpAllGather,
		NChannels: 1,
		NWarps:    16,
	}
	env := map[string]int{}
	opSet := false
	for _, par := range prog.Params {
		if !headerParams[par.Name] {
			return nil, errf(par.Line, par.Col, "unknown ResCCLAlgo parameter %q", par.Name)
		}
		switch par.Name {
		case "AlgoName":
			if !par.IsStr {
				return nil, errf(par.Line, par.Col, "AlgoName must be a string")
			}
			algo.Name = par.Str
		case "OpType":
			if !par.IsStr {
				return nil, errf(par.Line, par.Col, "OpType must be a string")
			}
			op, err := ir.ParseOpType(par.Str)
			if err != nil {
				return nil, errf(par.Line, par.Col, "%v", err)
			}
			algo.Op = op
			opSet = true
		default:
			if par.IsStr {
				return nil, errf(par.Line, par.Col, "%s must be an integer", par.Name)
			}
			env[par.Name] = par.Int
			switch par.Name {
			case "nRanks":
				algo.NRanks = par.Int
			case "nChannels":
				algo.NChannels = par.Int
			case "nWarps":
				algo.NWarps = par.Int
			}
		}
	}
	if algo.NRanks == 0 {
		return nil, errf(prog.Line, 1, "ResCCLAlgo requires an nRanks parameter")
	}
	if !opSet {
		return nil, errf(prog.Line, 1, "ResCCLAlgo requires an OpType parameter")
	}
	algo.NChunks = algo.NRanks
	if algo.Op == ir.OpAllToAll {
		// Personalized exchange: chunk s·nRanks+d carries rank s's
		// segment for rank d.
		algo.NChunks = algo.NRanks * algo.NRanks
	}

	ev := &evaluator{env: env, algo: algo}
	if err := ev.execBlock(prog.Body); err != nil {
		return nil, err
	}
	if err := algo.Validate(); err != nil {
		return nil, fmt.Errorf("lang: evaluated program is invalid: %w", err)
	}
	return algo, nil
}

// Compile parses and evaluates ResCCLang source in one call.
func Compile(src string) (*ir.Algorithm, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(prog)
}

type evaluator struct {
	env   map[string]int
	algo  *ir.Algorithm
	iters int
}

func (ev *evaluator) execBlock(stmts []Stmt) error {
	for _, s := range stmts {
		if err := ev.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) execStmt(s Stmt) error {
	switch st := s.(type) {
	case *Assign:
		v, err := ev.eval(st.Value)
		if err != nil {
			return err
		}
		ev.env[st.Name] = v
		return nil
	case *For:
		return ev.execFor(st)
	case *TransferStmt:
		return ev.execTransfer(st)
	default:
		line, col := s.Pos()
		return errf(line, col, "internal: unknown statement type %T", s)
	}
}

func (ev *evaluator) execFor(st *For) error {
	start, stop, step := 0, 0, 1
	switch len(st.RangeArgs) {
	case 1:
		v, err := ev.eval(st.RangeArgs[0])
		if err != nil {
			return err
		}
		stop = v
	case 2, 3:
		v0, err := ev.eval(st.RangeArgs[0])
		if err != nil {
			return err
		}
		v1, err := ev.eval(st.RangeArgs[1])
		if err != nil {
			return err
		}
		start, stop = v0, v1
		if len(st.RangeArgs) == 3 {
			v2, err := ev.eval(st.RangeArgs[2])
			if err != nil {
				return err
			}
			step = v2
		}
	}
	if step == 0 {
		return errf(st.Line, st.Col, "range() step must not be zero")
	}
	// Save and restore any shadowed loop variable so sibling loops can
	// reuse names, matching Python's scoping closely enough for the DSL.
	old, had := ev.env[st.Var]
	defer func() {
		if had {
			ev.env[st.Var] = old
		} else {
			delete(ev.env, st.Var)
		}
	}()
	for i := start; (step > 0 && i < stop) || (step < 0 && i > stop); i += step {
		ev.iters++
		if ev.iters > maxIterations {
			return errf(st.Line, st.Col, "loop iteration limit exceeded (%d)", maxIterations)
		}
		ev.env[st.Var] = i
		if err := ev.execBlock(st.Body); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) execTransfer(st *TransferStmt) error {
	vals := make([]int, 4)
	for i, a := range st.Args {
		v, err := ev.eval(a)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	ct, err := ir.ParseCommType(st.CommType)
	if err != nil {
		return errf(st.Line, st.Col, "%v", err)
	}
	tr := ir.Transfer{
		Src:   ir.Rank(vals[0]),
		Dst:   ir.Rank(vals[1]),
		Step:  ir.Step(vals[2]),
		Chunk: ir.ChunkID(vals[3]),
		Type:  ct,
	}
	if err := tr.Validate(ev.algo.NRanks, ev.algo.NChunks); err != nil {
		return errf(st.Line, st.Col, "%v", err)
	}
	if len(ev.algo.Transfers) >= maxTransfers {
		return errf(st.Line, st.Col, "transfer count limit exceeded (%d)", maxTransfers)
	}
	ev.algo.Transfers = append(ev.algo.Transfers, tr)
	return nil
}

func (ev *evaluator) eval(e Expr) (int, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ex.Value, nil
	case *Ident:
		v, ok := ev.env[ex.Name]
		if !ok {
			return 0, errf(ex.Line, ex.Col, "undefined variable %q", ex.Name)
		}
		return v, nil
	case *Neg:
		v, err := ev.eval(ex.Operand)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *BinOp:
		l, err := ev.eval(ex.LHS)
		if err != nil {
			return 0, err
		}
		r, err := ev.eval(ex.RHS)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, errf(ex.Line, ex.Col, "division by zero")
			}
			return floorDiv(l, r), nil
		case '%':
			if r == 0 {
				return 0, errf(ex.Line, ex.Col, "modulo by zero")
			}
			return pyMod(l, r), nil
		}
		return 0, errf(ex.Line, ex.Col, "internal: unknown operator %c", ex.Op)
	default:
		line, col := e.Pos()
		return 0, errf(line, col, "internal: unknown expression type %T", e)
	}
}

// floorDiv is Python floor division: the quotient rounded toward
// negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// pyMod is Python modulo: the result has the sign of the divisor, so
// (offset-step) % N is non-negative for positive N — ResCCLang programs
// rely on this for ring index wraparound.
func pyMod(a, b int) int {
	m := a % b
	if m != 0 && ((m < 0) != (b < 0)) {
		m += b
	}
	return m
}
