package replan

import (
	"errors"
	"reflect"
	"testing"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/verify"
)

func initialHoldings(t *testing.T, op ir.OpType, nRanks, nChunks int) *verify.Holdings {
	t.Helper()
	h, err := verify.Initial(op, nRanks, nChunks)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func surviving(tp *topo.Topology) []bool {
	out := make([]bool, tp.NRanks())
	for r := range out {
		out[r] = tp.RankAlive(ir.Rank(r))
	}
	return out
}

// TestHealthyFromScratch: on an intact topology the planner must carry
// each operator from its precondition to the full healthy postcondition
// — the degenerate replan is a complete collective.
func TestHealthyFromScratch(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	cases := []struct {
		op      ir.OpType
		nChunks int
	}{
		{ir.OpAllReduce, 4},
		{ir.OpReduceScatter, 4},
		{ir.OpAllGather, 4},
		{ir.OpBroadcast, 4},
		{ir.OpAllToAll, 16},
	}
	for _, tc := range cases {
		h := initialHoldings(t, tc.op, 4, tc.nChunks)
		rp, err := Build("scratch", h, tp)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if rp.Algo == nil {
			t.Fatalf("%v: planner emitted no transfers from the bare precondition", tc.op)
		}
		if len(rp.LostChunks) != 0 {
			t.Fatalf("%v: healthy replan declared losses: %v", tc.op, rp.LostChunks)
		}
		if _, err := verify.Check(tc.op, 4, tc.nChunks, nil, rp.Algo.Sorted(), verify.Expect{}); err != nil {
			t.Fatalf("%v: repair plan fails the healthy postcondition: %v", tc.op, err)
		}
	}
}

// TestDeadRankDegraded: with a rank carved out, the plan must complete
// the degraded postcondition and declare exactly the dead rank's
// contributions lost (AllReduce: nothing had been aggregated yet).
func TestDeadRankDegraded(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	carved, err := tp.Carve(nil, []ir.Rank{3})
	if err != nil {
		t.Fatal(err)
	}
	h := initialHoldings(t, ir.OpAllReduce, 4, 4)
	rp, err := Build("degraded", h, carved)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if rp.Lost[c] != verify.SetOf(3) {
			t.Fatalf("chunk %d: lost %v, want {3}", c, rp.Lost[c])
		}
	}
	exp := verify.Expect{Surviving: surviving(carved), Lost: rp.Lost}
	if _, err := verify.Check(ir.OpAllReduce, 4, 4, nil, rp.Algo.Sorted(), exp); err != nil {
		t.Fatalf("degraded repair plan rejected: %v", err)
	}
}

// TestPartialProgressPreserved: contributions already merged into a
// surviving rank before the failure must survive the replan — the
// planner reuses partial aggregates instead of redoing (or losing) them.
func TestPartialProgressPreserved(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	carved, err := tp.Carve(nil, []ir.Rank{3})
	if err != nil {
		t.Fatal(err)
	}
	h := initialHoldings(t, ir.OpAllReduce, 4, 1)
	// Before rank 3 died it had merged its term into rank 2.
	if err := h.Apply(ir.Transfer{Src: 3, Dst: 2, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy}); err != nil {
		t.Fatal(err)
	}
	rp, err := Build("partial", h, carved)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Lost[0] != 0 {
		t.Fatalf("contribution already aggregated was declared lost: %v", rp.Lost[0])
	}
	trace := []ir.Transfer{{Src: 3, Dst: 2, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy}}
	trace = append(trace, rp.Algo.Sorted()...)
	exp := verify.Expect{Surviving: surviving(carved)}
	if _, err := verify.Check(ir.OpAllReduce, 4, 1, nil, trace, exp); err != nil {
		t.Fatalf("repair over partial progress rejected: %v", err)
	}
}

// TestPartitioned: isolating a node entirely must fail with the typed
// ErrPartitioned, not plan a silent shortfall.
func TestPartitioned(t *testing.T) {
	tp := topo.New(2, 2, topo.A100()) // one shared NIC per node
	eg, in := tp.NICResources(0)
	carved, err := tp.Carve([]topo.ResourceID{eg, in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := initialHoldings(t, ir.OpAllReduce, 4, 4)
	if _, err := Build("split", h, carved); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("isolated node produced %v, want ErrPartitioned", err)
	}
}

// TestUnrecoverable: carving out every rank must fail typed.
func TestUnrecoverable(t *testing.T) {
	tp := topo.New(1, 2, topo.A100())
	carved, err := tp.Carve(nil, []ir.Rank{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	h := initialHoldings(t, ir.OpAllReduce, 2, 2)
	if _, err := Build("void", h, carved); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("rankless topology produced %v, want ErrUnrecoverable", err)
	}
}

// TestLostCopyDeclared: an AllGather chunk whose only copy died with its
// rank is declared lost and excused from the postcondition.
func TestLostCopyDeclared(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	carved, err := tp.Carve(nil, []ir.Rank{1})
	if err != nil {
		t.Fatal(err)
	}
	h := initialHoldings(t, ir.OpAllGather, 4, 4)
	rp, err := Build("lost-copy", h, carved)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 1 lived only on rank 1.
	if rp.Lost[1] != verify.SetOf(1) {
		t.Fatalf("chunk 1 lost set %v, want {1}", rp.Lost[1])
	}
	if !reflect.DeepEqual(rp.LostChunks, []ir.ChunkID{1}) {
		t.Fatalf("lost chunks %v, want [1]", rp.LostChunks)
	}
	exp := verify.Expect{Surviving: surviving(carved), Lost: rp.Lost}
	if _, err := verify.Check(ir.OpAllGather, 4, 4, nil, rp.Algo.Sorted(), exp); err != nil {
		t.Fatalf("degraded allgather repair rejected: %v", err)
	}
}

// TestDeterministic: equal inputs must yield byte-identical plans.
func TestDeterministic(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	eg, _ := tp.NICResources(0)
	carved, err := tp.Carve([]topo.ResourceID{eg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Plan {
		h := initialHoldings(t, ir.OpAllReduce, 8, 8)
		rp, err := Build("det", h, carved)
		if err != nil {
			t.Fatal(err)
		}
		return rp
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("plans differ across identical builds")
	}
}
