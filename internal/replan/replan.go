// Package replan builds repair plans for plan-level recovery: given the
// symbolic holdings a partially executed collective reached before
// permanent failures stranded it (internal/verify) and the carved
// topology that survives them (topo.Carve), it emits a fresh
// ir.Algorithm completing the collective's postcondition for the
// surviving ranks — the GC3-style "recompile when the target changes"
// move applied to our own scheduler.
//
// The planner's contract draws one principled line:
//
//   - input contributions may be lost: if no surviving rank holds (or
//     can forward) a contribution, it is declared in Plan.Lost and the
//     degraded postcondition excludes it;
//   - surviving consumers must be served: if a rank the operator
//     obligates cannot be reached from the data, the plan fails with
//     ErrPartitioned — a typed, actionable abort, never a silent
//     shortfall.
//
// Everything is deterministic: holders, trees and covers are derived
// from sorted rank order, so equal inputs yield identical plans.
package replan

import (
	"errors"
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/verify"
)

// Typed failures: callers (rt, the chaos harness) distinguish these
// with errors.Is.
var (
	// ErrPartitioned means the surviving topology cannot route required
	// data to a surviving rank the operator obligates.
	ErrPartitioned = errors.New("replan: surviving topology is partitioned")
	// ErrUnrecoverable means no surviving rank remains to carry the
	// collective.
	ErrUnrecoverable = errors.New("replan: no surviving ranks")
)

// Plan is a repair plan.
type Plan struct {
	// Algo is the repair algorithm: transfers completing the degraded
	// postcondition from the holdings' state (its Initial matrix is the
	// holdings' validity). Nil when nothing needs to move.
	Algo *ir.Algorithm
	// Target[c] is the achievable contribution set of chunk c; Lost[c]
	// is its complement — contributions permanent failures made
	// unrecoverable. Target/Lost follow reduce semantics; for copy
	// operators Lost[c] is the chunk's origin when no copy survives.
	Target []verify.Set
	Lost   []verify.Set
	// LostChunks lists chunks with a nonzero Lost set, ascending.
	LostChunks []ir.ChunkID
}

// maxExactCover bounds the exact disjoint-cover search; larger holder
// sets fall back to a deterministic greedy pass.
const maxExactCover = 20

// Build plans the repair. name labels the emitted algorithm.
func Build(name string, h *verify.Holdings, tp *topo.Topology) (*Plan, error) {
	if h.NRanks != tp.NRanks() {
		return nil, fmt.Errorf("replan: holdings have %d ranks but topology has %d", h.NRanks, tp.NRanks())
	}
	alive := tp.AliveRanks()
	if len(alive) == 0 {
		return nil, ErrUnrecoverable
	}
	b := &builder{
		h: h, tp: tp, alive: alive,
		isAlive: make([]bool, h.NRanks),
		inTrees: make(map[ir.Rank]*tree),
		plan: &Plan{
			Target: make([]verify.Set, h.NChunks),
			Lost:   make([]verify.Set, h.NChunks),
		},
	}
	for _, r := range alive {
		b.isAlive[r] = true
	}
	for c := 0; c < h.NChunks; c++ {
		if err := b.planChunk(ir.ChunkID(c)); err != nil {
			return nil, err
		}
	}
	for c := 0; c < h.NChunks; c++ {
		if b.plan.Lost[c] != 0 {
			b.plan.LostChunks = append(b.plan.LostChunks, ir.ChunkID(c))
		}
	}
	if len(b.transfers) > 0 {
		initial := make([][]bool, h.NRanks)
		for r := 0; r < h.NRanks; r++ {
			initial[r] = make([]bool, h.NChunks)
			for c := 0; c < h.NChunks; c++ {
				initial[r][c] = h.Valid(ir.Rank(r), ir.ChunkID(c))
			}
		}
		b.plan.Algo = &ir.Algorithm{
			Name:      name + "+repair",
			Op:        h.Op,
			NRanks:    h.NRanks,
			NChunks:   h.NChunks,
			Transfers: b.transfers,
			Initial:   initial,
		}
		if err := b.plan.Algo.Validate(); err != nil {
			return nil, fmt.Errorf("replan: internal: emitted invalid repair plan: %w", err)
		}
	}
	return b.plan, nil
}

type builder struct {
	h       *verify.Holdings
	tp      *topo.Topology
	alive   []ir.Rank
	isAlive []bool
	// inTrees memoizes shortest-path in-trees per aggregation root.
	inTrees   map[ir.Rank]*tree
	transfers []ir.Transfer
	step      ir.Step
	plan      *Plan
}

func (b *builder) emit(src, dst ir.Rank, c ir.ChunkID, typ ir.CommType) {
	b.transfers = append(b.transfers, ir.Transfer{
		Src: src, Dst: dst, Step: b.step, Chunk: c, Type: typ,
	})
	// Every transfer takes its own global step: data dependencies only
	// bind same-(rank, chunk) accesses, so unique steps give the DAG an
	// unambiguous order without serialising independent chunks.
	b.step++
}

func (b *builder) canSend(src, dst ir.Rank) bool { return b.tp.PathAlive(src, dst) }

// tree is a shortest-path tree over the alive ranks.
type tree struct {
	root ir.Rank
	// parent[r] is the next hop (toward the root for in-trees, from the
	// root for out-trees); -1 when r is the root or unreachable.
	parent []ir.Rank
	dist   []int // -1 when unreachable
}

func newTree(n int, root ir.Rank) *tree {
	t := &tree{root: root, parent: make([]ir.Rank, n), dist: make([]int, n)}
	for i := range t.parent {
		t.parent[i] = -1
		t.dist[i] = -1
	}
	t.dist[root] = 0
	return t
}

// inTree builds (and memoizes) the in-tree toward root: parent[x] is the
// rank x forwards to on a shortest alive path to root.
func (b *builder) inTree(root ir.Rank) *tree {
	if t, ok := b.inTrees[root]; ok {
		return t
	}
	t := newTree(b.h.NRanks, root)
	queue := []ir.Rank{root}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		for _, x := range b.alive {
			if x == y || t.dist[x] >= 0 || !b.canSend(x, y) {
				continue
			}
			t.dist[x] = t.dist[y] + 1
			t.parent[x] = y
			queue = append(queue, x)
		}
	}
	b.inTrees[root] = t
	return t
}

// outTree builds the out-tree from root: parent[x] is the rank that
// forwards to x on a shortest alive path from root.
func (b *builder) outTree(root ir.Rank) *tree {
	t := newTree(b.h.NRanks, root)
	queue := []ir.Rank{root}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		for _, x := range b.alive {
			if x == y || t.dist[x] >= 0 || !b.canSend(y, x) {
				continue
			}
			t.dist[x] = t.dist[y] + 1
			t.parent[x] = y
			queue = append(queue, x)
		}
	}
	return t
}

// multiOutTree runs a multi-source BFS from every source at distance 0.
func (b *builder) multiOutTree(sources []ir.Rank) *tree {
	t := &tree{root: -1, parent: make([]ir.Rank, b.h.NRanks), dist: make([]int, b.h.NRanks)}
	for i := range t.parent {
		t.parent[i] = -1
		t.dist[i] = -1
	}
	queue := append([]ir.Rank(nil), sources...)
	for _, s := range sources {
		t.dist[s] = 0
	}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		for _, x := range b.alive {
			if x == y || t.dist[x] >= 0 || !b.canSend(y, x) {
				continue
			}
			t.dist[x] = t.dist[y] + 1
			t.parent[x] = y
			queue = append(queue, x)
		}
	}
	return t
}

func (b *builder) planChunk(c ir.ChunkID) error {
	switch b.h.Op {
	case ir.OpAllReduce:
		return b.planReduce(c, b.alive[0], true)
	case ir.OpReduceScatter:
		owner := ir.Rank(int(c) % b.h.NRanks)
		if !b.isAlive[owner] {
			// The chunk's only consumer is dead: nothing to do, nothing
			// to declare.
			b.plan.Target[c] = 0
			return nil
		}
		return b.planReduce(c, owner, false)
	case ir.OpAllGather:
		return b.planCopy(c, ir.Rank(int(c)%b.h.NRanks), b.alive)
	case ir.OpBroadcast:
		return b.planCopy(c, 0, b.alive)
	case ir.OpAllToAll:
		dst := ir.Rank(int(c) % b.h.NRanks)
		if !b.isAlive[dst] {
			b.plan.Target[c] = 0
			return nil
		}
		return b.planCopy(c, ir.Rank(int(c)/b.h.NRanks), []ir.Rank{dst})
	default:
		return fmt.Errorf("replan: unknown operator %v", b.h.Op)
	}
}

// planReduce aggregates the best disjoint cover of surviving holdings of
// chunk c along the in-tree to root, then (for AllReduce) disseminates
// the result along the out-tree to every surviving rank.
func (b *builder) planReduce(c ir.ChunkID, root ir.Rank, disseminate bool) error {
	in := b.inTree(root)

	// Candidate holders: alive, valid, able to reach the root.
	// Contributions stranded on unreachable holders are lost, not fatal
	// — inputs may be lost, consumers may not (see package comment).
	var holders []ir.Rank
	var sets []verify.Set
	for _, r := range b.alive {
		if b.h.Valid(r, c) && in.dist[r] >= 0 {
			holders = append(holders, r)
			sets = append(sets, b.h.Set(r, c))
		}
	}
	target, chosen := bestCover(sets)
	full := verify.FullSet(b.h.NRanks)
	b.plan.Target[c] = target
	b.plan.Lost[c] = full &^ target
	if target == 0 {
		return nil
	}

	// Aggregate: deepest nodes first, each forwarding its accumulated
	// content to its parent. The first delivery into a parent without
	// content is a plain recv (replacing junk or an unselected holding);
	// later deliveries reduce. Selected sets are pairwise disjoint, so
	// no contribution is ever counted twice.
	content := make([]verify.Set, b.h.NRanks)
	has := make([]bool, b.h.NRanks)
	for _, i := range chosen {
		content[holders[i]] = sets[i]
		has[holders[i]] = true
	}
	order := append([]ir.Rank(nil), b.alive...)
	sort.SliceStable(order, func(i, j int) bool { return in.dist[order[i]] > in.dist[order[j]] })
	for _, x := range order {
		if x == root || !has[x] || in.dist[x] < 0 {
			continue
		}
		p := in.parent[x]
		typ := ir.CommRecvReduceCopy
		if !has[p] {
			typ = ir.CommRecv
		}
		b.emit(x, p, c, typ)
		content[p] |= content[x]
		has[p] = true
	}

	if !disseminate {
		return nil
	}
	out := b.outTree(root)
	// Shallow nodes first so every sender already holds the result.
	order = order[:0]
	for _, r := range b.alive {
		if r != root {
			order = append(order, r)
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return out.dist[order[i]] < out.dist[order[j]] })
	for _, x := range order {
		if out.dist[x] < 0 {
			return fmt.Errorf("%w: chunk %d: surviving rank %d is unreachable from aggregation root %d",
				ErrPartitioned, c, x, root)
		}
		b.emit(out.parent[x], x, c, ir.CommRecv)
	}
	return nil
}

// planCopy routes chunk c's surviving copy (origin contribution o) to
// every rank in need along a multi-source BFS forest from the holders.
func (b *builder) planCopy(c ir.ChunkID, o ir.Rank, need []ir.Rank) error {
	want := verify.SetOf(o)
	var holders []ir.Rank
	for _, r := range b.alive {
		if b.h.Valid(r, c) && b.h.Set(r, c) == want {
			holders = append(holders, r)
		}
	}
	if len(holders) == 0 {
		// The last copy died with its holders: the chunk is lost.
		b.plan.Target[c] = 0
		b.plan.Lost[c] = want
		return nil
	}
	b.plan.Target[c] = want
	t := b.multiOutTree(holders)
	for _, x := range need {
		if t.dist[x] < 0 {
			return fmt.Errorf("%w: chunk %d: surviving rank %d is unreachable from any holder of the chunk",
				ErrPartitioned, c, x)
		}
	}
	// Mark every node on a path to a needy rank, then emit the marked
	// subtree shallow-first: relays receive before they forward, and
	// unneeded branches stay silent.
	marked := make([]bool, b.h.NRanks)
	for _, x := range need {
		for r := x; r >= 0 && !marked[r]; r = t.parent[r] {
			marked[r] = true
		}
	}
	order := append([]ir.Rank(nil), b.alive...)
	sort.SliceStable(order, func(i, j int) bool { return t.dist[order[i]] < t.dist[order[j]] })
	for _, x := range order {
		if !marked[x] || t.dist[x] == 0 {
			continue
		}
		b.emit(t.parent[x], x, c, ir.CommRecv)
	}
	return nil
}

// bestCover selects the pairwise-disjoint subset of sets with maximum
// total coverage, preferring (deterministically) the lexicographically
// earliest selection among maxima. Beyond maxExactCover candidates it
// switches to a greedy pass (largest set first, ascending index on
// ties), which is still deterministic.
func bestCover(sets []verify.Set) (verify.Set, []int) {
	if len(sets) > maxExactCover {
		return greedyCover(sets)
	}
	// suffixUnion[i] bounds what indices ≥ i can still add.
	suffixUnion := make([]verify.Set, len(sets)+1)
	for i := len(sets) - 1; i >= 0; i-- {
		suffixUnion[i] = suffixUnion[i+1] | sets[i]
	}
	var best verify.Set
	var bestChosen []int
	var chosen []int
	var dfs func(i int, acc verify.Set)
	dfs = func(i int, acc verify.Set) {
		if acc.Count() > best.Count() {
			best = acc
			bestChosen = append(bestChosen[:0], chosen...)
		}
		if i == len(sets) || (acc|suffixUnion[i]).Count() <= best.Count() {
			return
		}
		if acc&sets[i] == 0 {
			chosen = append(chosen, i)
			dfs(i+1, acc|sets[i])
			chosen = chosen[:len(chosen)-1]
		}
		dfs(i+1, acc)
	}
	dfs(0, 0)
	return best, bestChosen
}

func greedyCover(sets []verify.Set) (verify.Set, []int) {
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sets[order[a]].Count() > sets[order[b]].Count()
	})
	var acc verify.Set
	var chosen []int
	for _, i := range order {
		if acc&sets[i] == 0 && sets[i] != 0 {
			acc |= sets[i]
			chosen = append(chosen, i)
		}
	}
	sort.Ints(chosen)
	return acc, chosen
}
