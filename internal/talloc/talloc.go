// Package talloc implements thread-block allocation (§4.4): the rigid
// connection-based strategy of existing backends (one TB per GPU peer
// connection and side) and ResCCL's flexible state-based strategy, which
// analyses the task pipeline's timeline and merges connections that are
// never active simultaneously onto a single TB.
package talloc

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/topo"
)

// Side distinguishes the two TBs involved in a connection: the sender's
// and the receiver's.
type Side int

// Connection sides.
const (
	SideSend Side = iota
	SideRecv
)

func (s Side) String() string {
	if s == SideSend {
		return "send"
	}
	return "recv"
}

// Endpoint is one rank-side of a connection — the unit of static TB
// assignment in connection-based backends.
type Endpoint struct {
	Conn topo.Connection
	Side Side
}

// Rank returns the GPU that hosts this endpoint's TB.
func (e Endpoint) Rank() ir.Rank {
	if e.Side == SideSend {
		return e.Conn.Src
	}
	return e.Conn.Dst
}

func (e Endpoint) String() string {
	return fmt.Sprintf("%s/%s", e.Conn, e.Side)
}

// Interval is a half-open activity window [Start, End) in seconds.
type Interval struct {
	Start, End float64
}

// Windows estimates, for every task, the time window during which its
// connection is active under task-level execution. The estimate is a
// static list schedule over the pipeline using the contention-free cost
// model (HPDS already separated link sharers into distinct
// sub-pipelines, so per-task bandwidth is the TB capability):
//
//	perInst(t)  = α(path) + chunk/TBCap(path)
//	start(t)    = max(dep starts + their per-instance time,   // pipelining
//	                  link predecessors' total completion)    // link serialization
//	finish(t)   = max(start(t) + n·perInst(t),
//	                  dep finishes + perInst(t))              // per-µ-batch chaining
type Windows struct {
	// PerTask[t] is the estimated activity interval of task t across all
	// micro-batches.
	PerTask []Interval
	// PerInst[t] is the single-instance duration estimate.
	PerInst []float64
	// Makespan is the estimated completion time of the whole pipeline.
	Makespan float64
}

// EstimateWindows produces the timeline analysis of §4.4 for a scheduled
// pipeline, given the chunk size and micro-batch count the plan will run
// with.
func EstimateWindows(p *sched.Pipeline, chunkBytes int, nMB int) *Windows {
	g := p.Graph
	n := float64(nMB)
	w := &Windows{
		PerTask: make([]Interval, len(g.Tasks)),
		PerInst: make([]float64, len(g.Tasks)),
	}
	// Task history per link, in global position order: a task starts
	// only once the link's sliding saturation window (g.LinkWindows)
	// has a free slot, mirroring the kernel's link predecessors.
	linkHist := make(map[topo.LinkID][]ir.TaskID)
	order := p.OrderedTasks()
	for _, t := range order {
		path := g.Paths[t]
		per := path.Alpha.Seconds() + float64(chunkBytes)/path.TBCap
		w.PerInst[t] = per
		start := 0.0
		finish := 0.0
		for _, d := range g.Deps[t] {
			if s := w.PerTask[d].Start + w.PerInst[d]; s > start {
				start = s
			}
			if f := w.PerTask[d].End + per; f > finish {
				finish = f
			}
		}
		for _, l := range g.Links[t] {
			hist := linkHist[l]
			win := g.LinkWindows[l]
			if win < 1 {
				win = 1
			}
			if len(hist) >= win {
				prev := hist[len(hist)-win]
				if e := w.PerTask[prev].End; e > start {
					start = e
				}
			}
		}
		if f := start + n*per; f > finish {
			finish = f
		}
		w.PerTask[t] = Interval{Start: start, End: finish}
		if finish > w.Makespan {
			w.Makespan = finish
		}
		for _, l := range g.Links[t] {
			linkHist[l] = append(linkHist[l], t)
		}
	}
	return w
}

// TB is one allocated thread block: the endpoints it serves and its
// estimated activity intervals (sorted, non-overlapping).
type TB struct {
	ID        int
	Rank      ir.Rank
	Endpoints []Endpoint
	Intervals []Interval
}

// Assignment maps every task's two primitive sides to thread blocks.
type Assignment struct {
	// SendTB[t] and RecvTB[t] are TB IDs (indices into TBs) executing
	// task t's send and receive primitives.
	SendTB, RecvTB []int
	TBs            []*TB
	// PerRank[r] lists the TB IDs hosted on rank r.
	PerRank [][]int
}

// NTBs returns the total number of allocated thread blocks.
func (a *Assignment) NTBs() int { return len(a.TBs) }

// MaxPerRank returns the largest TB count on any single rank — the SM
// footprint metric of §5.4.
func (a *Assignment) MaxPerRank() int {
	m := 0
	for _, tbs := range a.PerRank {
		if len(tbs) > m {
			m = len(tbs)
		}
	}
	return m
}

// endpointTasks groups a pipeline's tasks by endpoint, preserving global
// scheduling order within each endpoint.
func endpointTasks(p *sched.Pipeline) map[Endpoint][]ir.TaskID {
	g := p.Graph
	by := make(map[Endpoint][]ir.TaskID)
	for _, t := range p.OrderedTasks() {
		task := g.Tasks[t]
		conn := topo.Connection{Src: task.Src, Dst: task.Dst}
		by[Endpoint{Conn: conn, Side: SideSend}] = append(by[Endpoint{Conn: conn, Side: SideSend}], t)
		by[Endpoint{Conn: conn, Side: SideRecv}] = append(by[Endpoint{Conn: conn, Side: SideRecv}], t)
	}
	return by
}

func sortedEndpoints(by map[Endpoint][]ir.TaskID) []Endpoint {
	eps := make([]Endpoint, 0, len(by))
	for e := range by {
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool {
		a, b := eps[i], eps[j]
		if a.Conn.Src != b.Conn.Src {
			return a.Conn.Src < b.Conn.Src
		}
		if a.Conn.Dst != b.Conn.Dst {
			return a.Conn.Dst < b.Conn.Dst
		}
		return a.Side < b.Side
	})
	return eps
}

// ConnectionBased implements the baseline allocation: one TB per
// endpoint (connection and side), regardless of activity.
func ConnectionBased(p *sched.Pipeline, w *Windows) *Assignment {
	g := p.Graph
	by := endpointTasks(p)
	a := &Assignment{
		SendTB:  make([]int, len(g.Tasks)),
		RecvTB:  make([]int, len(g.Tasks)),
		PerRank: make([][]int, g.Algo.NRanks),
	}
	for _, ep := range sortedEndpoints(by) {
		tasks := by[ep]
		tb := &TB{ID: len(a.TBs), Rank: ep.Rank(), Endpoints: []Endpoint{ep}}
		tb.Intervals = mergeIntervals(taskIntervals(tasks, w))
		a.TBs = append(a.TBs, tb)
		a.PerRank[tb.Rank] = append(a.PerRank[tb.Rank], tb.ID)
		for _, t := range tasks {
			if ep.Side == SideSend {
				a.SendTB[t] = tb.ID
			} else {
				a.RecvTB[t] = tb.ID
			}
		}
	}
	return a
}

// StateBased implements ResCCL's flexible allocation: per rank,
// endpoints whose activity intervals never overlap are merged onto one
// TB (greedy interval partitioning, which is optimal for interval
// graphs). The merged TB executes the endpoints' primitives in timeline
// order, so overall execution time is unaffected.
func StateBased(p *sched.Pipeline, w *Windows) *Assignment {
	g := p.Graph
	by := endpointTasks(p)
	a := &Assignment{
		SendTB:  make([]int, len(g.Tasks)),
		RecvTB:  make([]int, len(g.Tasks)),
		PerRank: make([][]int, g.Algo.NRanks),
	}

	// Partition endpoints by rank; within a rank, sort by first activity
	// and greedily pack into the first TB with no interval overlap.
	perRank := make([][]Endpoint, g.Algo.NRanks)
	for _, ep := range sortedEndpoints(by) {
		perRank[ep.Rank()] = append(perRank[ep.Rank()], ep)
	}
	for r := range perRank {
		eps := perRank[r]
		ivs := make(map[Endpoint][]Interval, len(eps))
		for _, ep := range eps {
			ivs[ep] = mergeIntervals(taskIntervals(by[ep], w))
		}
		sort.SliceStable(eps, func(i, j int) bool {
			a, b := ivs[eps[i]], ivs[eps[j]]
			switch {
			case len(a) == 0:
				return false
			case len(b) == 0:
				return true
			case a[0].Start != b[0].Start:
				return a[0].Start < b[0].Start
			}
			return false
		})
		var rankTBs []*TB
		for _, ep := range eps {
			placed := false
			for _, tb := range rankTBs {
				if !intervalsOverlap(tb.Intervals, ivs[ep]) {
					tb.Endpoints = append(tb.Endpoints, ep)
					tb.Intervals = mergeIntervals(append(append([]Interval{}, tb.Intervals...), ivs[ep]...))
					placed = true
					assign(a, ep, by[ep], tb.ID)
					break
				}
			}
			if !placed {
				tb := &TB{ID: len(a.TBs), Rank: ir.Rank(r), Endpoints: []Endpoint{ep}}
				tb.Intervals = ivs[ep]
				a.TBs = append(a.TBs, tb)
				rankTBs = append(rankTBs, tb)
				a.PerRank[r] = append(a.PerRank[r], tb.ID)
				assign(a, ep, by[ep], tb.ID)
			}
		}
	}
	return a
}

func assign(a *Assignment, ep Endpoint, tasks []ir.TaskID, tbID int) {
	for _, t := range tasks {
		if ep.Side == SideSend {
			a.SendTB[t] = tbID
		} else {
			a.RecvTB[t] = tbID
		}
	}
}

func taskIntervals(tasks []ir.TaskID, w *Windows) []Interval {
	ivs := make([]Interval, 0, len(tasks))
	for _, t := range tasks {
		ivs = append(ivs, w.PerTask[t])
	}
	return ivs
}

// mergeIntervals sorts and coalesces overlapping/adjacent intervals.
func mergeIntervals(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// intervalsOverlap reports whether two sorted non-overlapping interval
// lists intersect.
func intervalsOverlap(a, b []Interval) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].End <= b[j].Start {
			i++
		} else if b[j].End <= a[i].Start {
			j++
		} else {
			return true
		}
	}
	return false
}

// Validate checks assignment invariants: every task has both sides
// assigned to TBs on the correct ranks, and (for state-based results)
// no TB serves two endpoints with overlapping activity.
func Validate(g *dag.Graph, a *Assignment) error {
	for t := range g.Tasks {
		task := g.Tasks[t]
		st, rt := a.SendTB[t], a.RecvTB[t]
		if st < 0 || st >= len(a.TBs) || rt < 0 || rt >= len(a.TBs) {
			return fmt.Errorf("talloc: task %d has out-of-range TB assignment (%d, %d)", t, st, rt)
		}
		if a.TBs[st].Rank != task.Src {
			return fmt.Errorf("talloc: task %d send TB %d on rank %d, want %d", t, st, a.TBs[st].Rank, task.Src)
		}
		if a.TBs[rt].Rank != task.Dst {
			return fmt.Errorf("talloc: task %d recv TB %d on rank %d, want %d", t, rt, a.TBs[rt].Rank, task.Dst)
		}
	}
	return nil
}
