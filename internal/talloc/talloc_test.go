package talloc

import (
	"testing"
	"testing/quick"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

func pipelineFor(t *testing.T, algo *ir.Algorithm, nNodes, gpn int) *sched.Pipeline {
	t.Helper()
	g, err := dag.Build(algo, topo.New(nNodes, gpn, topo.A100()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.Schedule(g, sched.PolicyHPDS)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWindowsMonotone(t *testing.T) {
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := pipelineFor(t, algo, 2, 4)
	w := EstimateWindows(p, 1<<20, 8)
	for i, iv := range w.PerTask {
		if iv.End <= iv.Start {
			t.Fatalf("task %d: empty window [%g,%g]", i, iv.Start, iv.End)
		}
		if iv.End > w.Makespan+1e-12 {
			t.Fatalf("task %d window exceeds makespan", i)
		}
		if w.PerInst[i] <= 0 {
			t.Fatalf("task %d: nonpositive per-instance estimate", i)
		}
	}
	// Dependencies must be reflected: a task starts no earlier than any
	// dependency's start.
	g := p.Graph
	for t2 := range g.Tasks {
		for _, d := range g.Deps[t2] {
			if w.PerTask[t2].Start < w.PerTask[d].Start {
				t.Fatalf("task %d starts before its dependency %d", t2, d)
			}
		}
	}
}

func TestConnectionBasedOneTBPerEndpoint(t *testing.T) {
	algo, err := expert.RingAllGather(8)
	if err != nil {
		t.Fatal(err)
	}
	p := pipelineFor(t, algo, 1, 8)
	w := EstimateWindows(p, 1<<20, 8)
	a := ConnectionBased(p, w)
	if err := Validate(p.Graph, a); err != nil {
		t.Fatal(err)
	}
	// Ring: 8 connections × 2 sides = 16 TBs, 2 per rank.
	if a.NTBs() != 16 {
		t.Errorf("NTBs = %d, want 16", a.NTBs())
	}
	if a.MaxPerRank() != 2 {
		t.Errorf("MaxPerRank = %d, want 2", a.MaxPerRank())
	}
	for _, tb := range a.TBs {
		if len(tb.Endpoints) != 1 {
			t.Errorf("connection-based TB %d serves %d endpoints, want 1", tb.ID, len(tb.Endpoints))
		}
	}
}

func TestStateBasedNeverWorse(t *testing.T) {
	builders := map[string]func() (*ir.Algorithm, error){
		"hm-ar":    func() (*ir.Algorithm, error) { return expert.HMAllReduce(2, 8) },
		"hm-ag":    func() (*ir.Algorithm, error) { return expert.HMAllGather(2, 8) },
		"taccl-ar": func() (*ir.Algorithm, error) { return synth.TACCLAllReduce(2, 8) },
		"taccl-ag": func() (*ir.Algorithm, error) { return synth.TACCLAllGather(2, 8) },
	}
	for name, build := range builders {
		algo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		p := pipelineFor(t, algo, 2, 8)
		w := EstimateWindows(p, 1<<20, 8)
		conn := ConnectionBased(p, w)
		state := StateBased(p, w)
		if err := Validate(p.Graph, state); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if state.NTBs() > conn.NTBs() {
			t.Errorf("%s: state-based uses %d TBs, connection-based %d", name, state.NTBs(), conn.NTBs())
		}
	}
}

// State-based merging must never co-locate endpoints with overlapping
// activity on one TB.
func TestStateBasedNoOverlapWithinTB(t *testing.T) {
	algo, err := synth.TACCLAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := pipelineFor(t, algo, 2, 4)
	w := EstimateWindows(p, 1<<20, 8)
	a := StateBased(p, w)
	// Recompute per-endpoint intervals and check pairwise disjointness
	// within each TB.
	byEndpoint := map[Endpoint][]Interval{}
	for t2 := range p.Graph.Tasks {
		task := p.Graph.Tasks[t2]
		conn := topo.Connection{Src: task.Src, Dst: task.Dst}
		se := Endpoint{Conn: conn, Side: SideSend}
		re := Endpoint{Conn: conn, Side: SideRecv}
		byEndpoint[se] = append(byEndpoint[se], w.PerTask[t2])
		byEndpoint[re] = append(byEndpoint[re], w.PerTask[t2])
	}
	for _, tb := range a.TBs {
		for i := 0; i < len(tb.Endpoints); i++ {
			for j := i + 1; j < len(tb.Endpoints); j++ {
				a := mergeIntervals(append([]Interval(nil), byEndpoint[tb.Endpoints[i]]...))
				b := mergeIntervals(append([]Interval(nil), byEndpoint[tb.Endpoints[j]]...))
				if intervalsOverlap(a, b) {
					t.Fatalf("TB %d co-locates overlapping endpoints %v and %v",
						tb.ID, tb.Endpoints[i], tb.Endpoints[j])
				}
			}
		}
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]Interval{{3, 5}, {1, 2}, {4, 7}, {9, 10}})
	want := []Interval{{1, 2}, {3, 7}, {9, 10}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestIntervalsOverlap(t *testing.T) {
	a := []Interval{{0, 1}, {5, 6}}
	b := []Interval{{1, 2}, {6, 8}}
	if intervalsOverlap(a, b) {
		t.Error("touching intervals must not count as overlapping")
	}
	c := []Interval{{0.5, 1.5}}
	if !intervalsOverlap(a, c) {
		t.Error("expected overlap")
	}
	if intervalsOverlap(nil, a) {
		t.Error("empty list never overlaps")
	}
}

// Property: merged intervals are sorted, non-overlapping and cover the
// inputs.
func TestPropertyMergeIntervals(t *testing.T) {
	f := func(starts []float64) bool {
		ivs := make([]Interval, 0, len(starts))
		for _, s := range starts {
			if s < 0 {
				s = -s
			}
			if s > 1e9 {
				continue
			}
			ivs = append(ivs, Interval{Start: s, End: s + 1})
		}
		merged := mergeIntervals(append([]Interval(nil), ivs...))
		for i := 1; i < len(merged); i++ {
			if merged[i].Start <= merged[i-1].End {
				return false
			}
		}
		// Every input point must fall inside some merged interval.
		for _, iv := range ivs {
			inside := false
			for _, m := range merged {
				if iv.Start >= m.Start && iv.End <= m.End {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointRank(t *testing.T) {
	c := topo.Connection{Src: 3, Dst: 7}
	if (Endpoint{Conn: c, Side: SideSend}).Rank() != 3 {
		t.Error("send endpoint lives on the source")
	}
	if (Endpoint{Conn: c, Side: SideRecv}).Rank() != 7 {
		t.Error("recv endpoint lives on the destination")
	}
}
