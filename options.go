package resccl

import (
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/tune"
)

// Trace collects observability spans (compile stages, execution) and
// simulated-execution timelines; export it with WriteChrome.
type Trace = obs.Trace

// Metrics is the counters/gauges registry (plan-cache hits, simulator
// event counts, per-link busy time); export it with WriteJSON.
type Metrics = obs.Metrics

// Timeline is the simulated execution record of one collective: one
// track per thread block and per link, plus fault/replan lanes.
type Timeline = obs.Timeline

// NewTrace returns an empty trace sink.
func NewTrace() *Trace { return obs.NewTrace() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Option configures a Communicator at construction time.
type Option interface{ applyComm(*Communicator) }

// RunOption configures one collective invocation. Options that implement
// both interfaces (WithChunkBytes, WithTraceSink, …) can be set as a
// communicator-wide default and overridden per call; per-call options
// always win.
type RunOption interface{ applyRun(*runSettings) }

// CommRunOption works both as a communicator default (Option) and as a
// per-call override (RunOption).
type CommRunOption interface {
	Option
	RunOption
}

// runSettings is the effective configuration of one collective call:
// the communicator's defaults overlaid with per-call RunOptions.
type runSettings struct {
	chunkBytes int64
	autoTune   bool
	protocol   ir.Protocol
	trace      *obs.Trace
	metrics    *obs.Metrics
	timeline   bool
	// dispatch is an explicit dispatch table (WithDispatchTable);
	// dispatchAuto asks for the communicator's lazily autotuned table
	// (WithAutotune). Per-call settings replace the communicator
	// default wholesale, so a per-call table wins over a default
	// WithAutotune and vice versa.
	dispatch     *tune.Table
	dispatchAuto bool
	// tuneHash is set when a table picked the call's algorithm; it
	// enters the plan-cache fingerprint so re-tuned tables never serve
	// plans cached under an earlier generation. dispatchName is the
	// table's pick (the registry key or encoded sketch name), reported
	// by Run.Algorithm instead of the plan's display name.
	tuneHash     string
	dispatchName string
}

type commOption func(*Communicator)

func (o commOption) applyComm(c *Communicator) { o(c) }

type dualOption struct {
	run func(*runSettings)
}

func (o dualOption) applyComm(c *Communicator) { o.run(&c.def) }
func (o dualOption) applyRun(s *runSettings)   { o.run(s) }

// WithBackend selects the execution backend (default BackendResCCL).
// Backends are fixed at construction, so this is not a per-call option.
func WithBackend(k BackendKind) Option {
	return commOption(func(c *Communicator) { c.kind = k })
}

// WithChunkBytes overrides the transfer chunk size (default 1 MiB, as
// in the paper's CCL configuration). Usable per communicator or per
// call.
func WithChunkBytes(n int64) CommRunOption {
	return dualOption{run: func(s *runSettings) {
		s.chunkBytes = n
		s.autoTune = false
	}}
}

// WithProtocol forces a transport protocol tier (ProtoLL, ProtoLL128,
// ProtoSimple) for the run instead of the backend's size-based
// auto-selection. Usable per communicator or per call; the per-call
// setting wins. ProtoAuto restores auto-selection: the NCCL backend
// picks the tier real NCCL would use for the message size, the other
// backends run at full bandwidth (Simple semantics). Forced and
// auto-selected plans are cached under distinct fingerprints.
func WithProtocol(p Protocol) CommRunOption {
	return dualOption{run: func(s *runSettings) { s.protocol = p }}
}

// WithDispatchTable routes operator-level calls (AllReduce, AllGather,
// …) through a tuned dispatch table: each call runs the algorithm and
// protocol tier the table measured fastest for its message size, and
// Run.Algorithm reports the pick. Usable per communicator or per call;
// the per-call setting wins, and a nil table restores the built-in
// defaults. A forced WithProtocol still overrides the table's tier.
// RunAlgorithm is never redirected — explicit algorithms bypass
// dispatch.
func WithDispatchTable(t *DispatchTable) CommRunOption {
	return dualOption{run: func(s *runSettings) {
		s.dispatchAuto = false
		if t == nil {
			s.dispatch = nil
			return
		}
		s.dispatch = t.t
	}}
}

// WithAutotune dispatches operator-level calls through the
// communicator's own autotuned table, running the tuning sweep lazily
// on first use (once per communicator — subsequent calls reuse it; see
// Communicator.Tune to run it eagerly or export the table). Usable per
// communicator or per call; per-call WithDispatchTable overrides it.
func WithAutotune() CommRunOption {
	return dualOption{run: func(s *runSettings) {
		s.dispatch = nil
		s.dispatchAuto = true
	}}
}

// WithAutoTunedChunks picks the chunk size per call from the Eq. 5
// task-level estimate (core.TuneChunkSize): larger chunks amortize the
// per-transfer startup cost on big buffers while small buffers keep
// enough micro-batches for pipelining.
func WithAutoTunedChunks() CommRunOption {
	return dualOption{run: func(s *runSettings) { s.autoTune = true }}
}

// WithTraceSink records observability data into t: compile-stage spans
// on cache misses, execution spans, and the simulated timeline of every
// run (implies timeline recording). Export with t.WriteChrome.
func WithTraceSink(t *Trace) CommRunOption {
	return dualOption{run: func(s *runSettings) { s.trace = t }}
}

// WithMetrics publishes counters and gauges into m: plan-cache
// hits/misses, simulator event and instance counts, per-link busy time.
func WithMetrics(m *Metrics) CommRunOption {
	return dualOption{run: func(s *runSettings) { s.metrics = m }}
}

// WithTimeline enables per-instance timeline recording for the run even
// without a trace sink, making Run.Timeline available. Recording costs
// one record per task instance.
func WithTimeline() CommRunOption {
	return dualOption{run: func(s *runSettings) { s.timeline = true }}
}

// settings resolves the effective configuration for one call.
func (c *Communicator) settings(opts []RunOption) runSettings {
	s := c.def
	for _, o := range opts {
		o.applyRun(&s)
	}
	if s.trace != nil {
		s.timeline = true
	}
	return s
}
