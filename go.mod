module github.com/resccl/resccl

go 1.22
