package resccl

import (
	"fmt"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/synth"
)

// AlgorithmInfo describes one entry of the algorithm registry.
type AlgorithmInfo struct {
	// Name is the registry key ("ring-allreduce", "hm-allgather", …).
	// Synthesized-plan emulations carry a "synth:" prefix.
	Name string
	// Op is the collective operator the algorithm implements.
	Op Op
	// NParams is the number of integer parameters BuildAlgorithm
	// expects: 1 for flat algorithms (nRanks), 2 for hierarchical ones
	// (nNodes, gpusPerNode).
	NParams int
}

// AlgorithmNames returns the names of every registered algorithm
// builder, sorted — expert-designed algorithms plus the promoted
// synthesized plans ("synth:" prefix). Each can be instantiated with
// BuildAlgorithm.
func AlgorithmNames() []string { return expert.Names() }

// AlgorithmRegistry returns the full registry, sorted by name.
func AlgorithmRegistry() []AlgorithmInfo {
	builders := expert.Registry()
	out := make([]AlgorithmInfo, len(builders))
	for i, b := range builders {
		out[i] = AlgorithmInfo{Name: b.Name, Op: b.Op, NParams: b.NParams}
	}
	return out
}

// BuildAlgorithm constructs a registered algorithm by name. Flat
// algorithms take one parameter (nRanks); hierarchical ones take two
// (nNodes, gpusPerNode). Synthesized sketch plans ("synth:sketch/…",
// the names dispatch tables record) encode their shape in the name and
// take no parameters. Unknown names return ErrUnknownAlgorithm.
func BuildAlgorithm(name string, params ...int) (*Algorithm, error) {
	if synth.IsSketchName(name) {
		if len(params) != 0 {
			return nil, fmt.Errorf("resccl: sketch plan %q encodes its shape; BuildAlgorithm takes no parameters for it, got %d", name, len(params))
		}
		algo, err := synth.BuildNamed(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrUnknownAlgorithm, name, err)
		}
		return algo, nil
	}
	if _, ok := expert.Lookup(name); !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownAlgorithm, name, expert.Names())
	}
	return expert.Build(name, params...)
}
