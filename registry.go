package resccl

import (
	"fmt"

	"github.com/resccl/resccl/internal/expert"
)

// AlgorithmInfo describes one entry of the expert algorithm registry.
type AlgorithmInfo struct {
	// Name is the registry key ("ring-allreduce", "hm-allgather", …).
	Name string
	// Op is the collective operator the algorithm implements.
	Op Op
	// NParams is the number of integer parameters BuildAlgorithm
	// expects: 1 for flat algorithms (nRanks), 2 for hierarchical ones
	// (nNodes, gpusPerNode).
	NParams int
}

// AlgorithmNames returns the names of every expert algorithm builder,
// sorted. Each can be instantiated with BuildAlgorithm.
func AlgorithmNames() []string { return expert.Names() }

// AlgorithmRegistry returns the full registry, sorted by name.
func AlgorithmRegistry() []AlgorithmInfo {
	builders := expert.Registry()
	out := make([]AlgorithmInfo, len(builders))
	for i, b := range builders {
		out[i] = AlgorithmInfo{Name: b.Name, Op: b.Op, NParams: b.NParams}
	}
	return out
}

// BuildAlgorithm constructs a registered expert algorithm by name. Flat
// algorithms take one parameter (nRanks); hierarchical ones take two
// (nNodes, gpusPerNode). Unknown names return ErrUnknownAlgorithm.
func BuildAlgorithm(name string, params ...int) (*Algorithm, error) {
	if _, ok := expert.Lookup(name); !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownAlgorithm, name, expert.Names())
	}
	return expert.Build(name, params...)
}
