package resccl_test

import (
	"strings"
	"testing"

	"github.com/resccl/resccl"
)

func newComm(t *testing.T, kind resccl.BackendKind) *resccl.Communicator {
	t.Helper()
	tp := resccl.NewTopology(2, 4, resccl.A100())
	c, err := resccl.NewCommunicator(tp, resccl.WithBackend(kind))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCommunicatorCollectives(t *testing.T) {
	comm := newComm(t, resccl.BackendResCCL)
	if comm.NRanks() != 8 {
		t.Fatalf("NRanks = %d, want 8", comm.NRanks())
	}
	for _, op := range []func(int64, ...resccl.RunOption) (*resccl.Run, error){
		comm.AllGather, comm.AllReduce, comm.ReduceScatter,
	} {
		run, err := op(256 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if run.AlgoBandwidth() <= 0 {
			t.Errorf("%s: nonpositive bandwidth", run.Algorithm())
		}
		if run.Completion <= 0 {
			t.Errorf("%s: nonpositive completion", run.Algorithm())
		}
		if run.MicroBatches() < 1 {
			t.Errorf("%s: no micro-batches", run.Algorithm())
		}
		if u := run.LinkUtilization(); u <= 0 || u > 1.000001 {
			t.Errorf("%s: link utilization %f out of range", run.Algorithm(), u)
		}
	}
}

func TestBackendsOrdering(t *testing.T) {
	// The headline claim, via the public API: ResCCL ≥ MSCCL and ≥ NCCL
	// on a large AllReduce.
	bw := map[resccl.BackendKind]float64{}
	for _, k := range []resccl.BackendKind{resccl.BackendNCCL, resccl.BackendMSCCL, resccl.BackendResCCL} {
		run, err := newComm(t, k).AllReduce(1 << 30)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		bw[k] = run.AlgoBandwidth()
	}
	if bw[resccl.BackendResCCL] <= bw[resccl.BackendMSCCL] {
		t.Errorf("ResCCL (%.1f GB/s) not faster than MSCCL (%.1f GB/s)",
			bw[resccl.BackendResCCL]/1e9, bw[resccl.BackendMSCCL]/1e9)
	}
	if bw[resccl.BackendResCCL] <= bw[resccl.BackendNCCL] {
		t.Errorf("ResCCL (%.1f GB/s) not faster than NCCL (%.1f GB/s)",
			bw[resccl.BackendResCCL]/1e9, bw[resccl.BackendNCCL]/1e9)
	}
}

func TestResourceFootprint(t *testing.T) {
	// ResCCL must occupy fewer TBs per GPU than MSCCL for the same
	// algorithm (Table 3).
	rs, err := newComm(t, resccl.BackendResCCL).AllReduce(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := newComm(t, resccl.BackendMSCCL).AllReduce(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Utilization().TBs >= ms.Utilization().TBs {
		t.Errorf("ResCCL TBs/GPU (%d) not below MSCCL (%d)", rs.Utilization().TBs, ms.Utilization().TBs)
	}
	if rs.Utilization().AvgIdle >= ms.Utilization().AvgIdle {
		t.Errorf("ResCCL avg idle (%f) not below MSCCL (%f)", rs.Utilization().AvgIdle, ms.Utilization().AvgIdle)
	}
}

func TestCompileLangAndRun(t *testing.T) {
	src := `
def ResCCLAlgo(nRanks=8, AlgoName="Ring", OpType="Allgather"):
    N = 8
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
`
	algo, err := resccl.CompileLang(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := resccl.Verify(algo); err != nil {
		t.Fatal(err)
	}
	comm := newComm(t, resccl.BackendResCCL)
	run, err := comm.RunAlgorithm(algo, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	if run.Algorithm() != "Ring" {
		t.Errorf("algorithm name %q, want Ring", run.Algorithm())
	}
	// Plan caching: a second run must reuse the compiled plan and be
	// deterministic.
	run2, err := comm.RunAlgorithm(algo, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	if run.Completion != run2.Completion {
		t.Errorf("nondeterministic: %v vs %v", run.Completion, run2.Completion)
	}
}

func TestAlgorithmsCatalog(t *testing.T) {
	if _, err := resccl.BuildAlgorithm("hm-allreduce", 2, 8); err != nil {
		t.Error(err)
	}
	if _, err := resccl.BuildAlgorithm("tree-allreduce", 16); err != nil {
		t.Error(err)
	}
	a, err := resccl.BuildAlgorithm("ring-reducescatter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := resccl.Verify(a); err != nil {
		t.Error(err)
	}
}

func TestPublicTraining(t *testing.T) {
	cfg := resccl.TrainConfig{
		Model:       resccl.ModelT5_220M,
		GlobalBatch: 16,
		TP:          1, DP: 8,
		NNodes: 2, GPN: 4,
	}
	res, err := resccl.SimulateTraining(cfg, resccl.BackendResCCL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("nonpositive throughput")
	}
	if _, err := resccl.SimulateTraining(cfg, resccl.BackendKind(42)); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("expected unknown-backend error, got %v", err)
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := resccl.NewCommunicator(nil); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := resccl.NewCommunicator(resccl.NewTopology(1, 4, resccl.A100()), resccl.WithBackend(resccl.BackendKind(9))); err == nil {
		t.Error("unknown backend should fail")
	}
	comm := newComm(t, resccl.BackendResCCL)
	if _, err := comm.AllReduce(0); err == nil {
		t.Error("zero buffer should fail")
	}
	if _, err := resccl.CompileLang("not a program"); err == nil {
		t.Error("bad DSL should fail")
	}
}

func TestExecuteAlgorithmConcurrently(t *testing.T) {
	comm := newComm(t, resccl.BackendResCCL)
	algo, err := resccl.BuildAlgorithm("hm-allreduce", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.ExecuteAlgorithm(algo, 3); err != nil {
		t.Fatal(err)
	}
}

func TestEmitLangRoundTrip(t *testing.T) {
	algo, err := resccl.BuildAlgorithm("ring-allgather", 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := resccl.EmitLang(algo)
	if err != nil {
		t.Fatal(err)
	}
	back, err := resccl.CompileLang(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := resccl.Verify(back); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastAllBackends(t *testing.T) {
	for _, k := range []resccl.BackendKind{resccl.BackendNCCL, resccl.BackendMSCCL, resccl.BackendResCCL} {
		run, err := newComm(t, k).Broadcast(128 << 20)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if run.AlgoBandwidth() <= 0 {
			t.Errorf("%v: nonpositive broadcast bandwidth", k)
		}
	}
}

func TestAllToAllBackends(t *testing.T) {
	for _, k := range []resccl.BackendKind{resccl.BackendNCCL, resccl.BackendMSCCL, resccl.BackendResCCL} {
		run, err := newComm(t, k).AllToAll(128 << 20)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if run.AlgoBandwidth() <= 0 {
			t.Errorf("%v: nonpositive alltoall bandwidth", k)
		}
	}
}

func TestH100Topology(t *testing.T) {
	tp := resccl.NewTopology(2, 8, resccl.H100())
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		t.Fatal(err)
	}
	run, err := comm.AllReduce(512 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// H100's 2× faster NICs must beat A100 on the NIC-bound AllReduce.
	a100, err := resccl.NewCommunicator(resccl.NewTopology(2, 8, resccl.A100()))
	if err != nil {
		t.Fatal(err)
	}
	runA, err := a100.AllReduce(512 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if run.AlgoBandwidth() <= runA.AlgoBandwidth() {
		t.Errorf("H100 (%.1f GB/s) should beat A100 (%.1f GB/s)",
			run.AlgoBandwidth()/1e9, runA.AlgoBandwidth()/1e9)
	}
}

func TestRunConcurrently(t *testing.T) {
	comm := newComm(t, resccl.BackendResCCL)
	ar, err := resccl.BuildAlgorithm("hm-allreduce", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := resccl.BuildAlgorithm("hm-allgather", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := comm.RunAlgorithm(ar, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := comm.RunConcurrently(
		[]*resccl.Algorithm{ar, ag},
		[]int64{128 << 20, 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0].Completion <= solo.Completion {
		t.Errorf("AllReduce under contention (%v) should be slower than solo (%v)",
			runs[0].Completion, solo.Completion)
	}
	if _, err := comm.RunConcurrently(nil, nil); err == nil {
		t.Error("empty concurrent run should fail")
	}
}

func TestEmbedAlgorithmGroups(t *testing.T) {
	ring, err := resccl.BuildAlgorithm("ring-allreduce", 2)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := resccl.EmbedAlgorithm(ring, []resccl.Rank{1, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := resccl.Verify(grp); err != nil {
		t.Fatal(err)
	}
	comm := newComm(t, resccl.BackendResCCL)
	if _, err := comm.RunAlgorithm(grp, 64<<20); err != nil {
		t.Fatal(err)
	}
}

func TestLogStepAlgorithmsRun(t *testing.T) {
	comm := newComm(t, resccl.BackendResCCL)
	bruck, err := resccl.BuildAlgorithm("bruck-allgather", 8)
	if err != nil {
		t.Fatal(err)
	}
	rhd, err := resccl.BuildAlgorithm("rhd-allreduce", 8)
	if err != nil {
		t.Fatal(err)
	}
	ringAG, err := resccl.BuildAlgorithm("ring-allgather", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Both log-step algorithms must compile and run. (Their real-world
	// latency advantage comes from aggregating a round's chunks into one
	// message, which the chunk-granular model intentionally does not
	// coalesce, so no ordering against the ring is asserted here.)
	for _, algo := range []*resccl.Algorithm{bruck, rhd} {
		run, err := comm.RunAlgorithm(algo, 64<<20)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name, err)
		}
		if run.AlgoBandwidth() <= 0 {
			t.Errorf("%s: nonpositive bandwidth", algo.Name)
		}
	}
	if _, err := comm.RunAlgorithm(ringAG, 64<<20); err != nil {
		t.Fatal(err)
	}
}

func TestAutoTunedChunks(t *testing.T) {
	tp := resccl.NewTopology(2, 8, resccl.A100())
	def, err := resccl.NewCommunicator(tp)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := resccl.NewCommunicator(tp, resccl.WithAutoTunedChunks())
	if err != nil {
		t.Fatal(err)
	}
	d, err := def.AllReduce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tuned.AllReduce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.AlgoBandwidth() < d.AlgoBandwidth() {
		t.Errorf("auto-tuned chunks (%.1f GB/s) should not lose to the default (%.1f GB/s)",
			a.AlgoBandwidth()/1e9, d.AlgoBandwidth()/1e9)
	}
}
