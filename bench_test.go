package resccl_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment through
// the bench harness in Quick mode (reduced sweeps); run the ressclbench
// CLI without -quick for the full parameter ranges.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFigure6 -benchtime=1x

import (
	"testing"

	"github.com/resccl/resccl/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkTable1LinkUtilization regenerates Table 1: global link
// utilization of expert and synthesized plans on the MSCCL backend.
func BenchmarkTable1LinkUtilization(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure2Breakdown regenerates Fig. 2: primitive time-cost
// breakdown on the MSCCL runtime (extra-channel idleness, sync blocking).
func BenchmarkFigure2Breakdown(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3Interpreter regenerates Fig. 3: runtime interpreter vs
// direct kernel execution.
func BenchmarkFigure3Interpreter(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4TBParallelism regenerates Fig. 4: single-NIC bandwidth
// vs number of thread blocks.
func BenchmarkFigure4TBParallelism(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure6Expert regenerates Fig. 6: expert-designed AllGather
// and AllReduce bandwidth across buffer sizes on 16 and 32 GPUs.
func BenchmarkFigure6Expert(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7Synth regenerates Fig. 7: ResCCL speedup over MSCCL on
// TACCL- and TECCL-synthesized algorithms.
func BenchmarkFigure7Synth(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8ExtraTopos regenerates Fig. 8: expert algorithms on
// the 2×4 and 4×4 topologies.
func BenchmarkFigure8ExtraTopos(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9ExtraTopos regenerates Fig. 9: synthesized algorithms
// on the 2×4 and 4×4 topologies.
func BenchmarkFigure9ExtraTopos(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10aWorkflow regenerates Fig. 10(a): offline workflow
// phase scalability.
func BenchmarkFigure10aWorkflow(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFigure10bHPDSvsRR regenerates Fig. 10(b): HPDS vs round-robin
// scheduling.
func BenchmarkFigure10bHPDSvsRR(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkFigure11V100 regenerates Fig. 11: the V100/100G cluster
// comparison for HM collectives.
func BenchmarkFigure11V100(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable3TBUtilization regenerates Table 3: TB counts and idle
// ratios, ResCCL vs MSCCL across four topologies.
func BenchmarkTable3TBUtilization(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure12TBTimeline regenerates Fig. 12: per-TB sync vs
// execution time with early-release savings on V100.
func BenchmarkFigure12TBTimeline(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFigure13Training regenerates Fig. 13: end-to-end Megatron
// training throughput for GPT-3 and T5.
func BenchmarkFigure13Training(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkAblations regenerates the design-choice ablations
// (granularity, allocation, scheduling policy, chunk size).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablation") }
