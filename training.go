package resccl

import (
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/train"
)

// TrainConfig describes a Megatron-style training deployment for the
// end-to-end simulation of §5.5.
type TrainConfig = train.Config

// TrainModel is a transformer model configuration.
type TrainModel = train.ModelConfig

// TrainResult reports one simulated training iteration.
type TrainResult = train.Result

// The paper's model zoo: T5 models trained with data parallelism, GPT-3
// models with tensor parallelism.
var (
	ModelT5_220M   = train.T5_220M
	ModelT5_770M   = train.T5_770M
	ModelT5_3B     = train.T5_3B
	ModelGPT3_6_7B = train.GPT3_6_7B
	ModelGPT3_13B  = train.GPT3_13B
	ModelGPT3_22B  = train.GPT3_22B
	ModelGPT3_45B  = train.GPT3_45B
)

// SimulateTraining runs one training iteration of the configured model
// with the given backend serving all collectives, and returns iteration
// timing and throughput.
func SimulateTraining(cfg TrainConfig, kind BackendKind) (*TrainResult, error) {
	var b backend.Backend
	switch kind {
	case BackendResCCL:
		b = backend.NewResCCL()
	case BackendNCCL:
		b = backend.NewNCCL()
	case BackendMSCCL:
		b = backend.NewMSCCL()
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownBackend, kind)
	}
	return train.Simulate(cfg, b)
}
