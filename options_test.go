package resccl_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/resccl/resccl"
)

func TestRunOptionPrecedence(t *testing.T) {
	tp := resccl.NewTopology(2, 4, resccl.A100())
	comm, err := resccl.NewCommunicator(tp,
		resccl.WithBackend(resccl.BackendResCCL),
		resccl.WithChunkBytes(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	base, err := comm.AllReduce(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Per-call option overrides the communicator default: 1 MiB chunks
	// quadruple the micro-batch count of 4 MiB chunks.
	fine, err := comm.AllReduce(64<<20, resccl.WithChunkBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if fine.MicroBatches() != 4*base.MicroBatches() {
		t.Errorf("per-call 1MiB chunks gave %d micro-batches, communicator 4MiB gave %d; want 4x",
			fine.MicroBatches(), base.MicroBatches())
	}
	// The per-call override must not stick to the communicator.
	again, err := comm.AllReduce(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if again.MicroBatches() != base.MicroBatches() {
		t.Errorf("per-call option leaked into communicator state: %d vs %d micro-batches",
			again.MicroBatches(), base.MicroBatches())
	}
}

// WithProtocol must follow the same precedence as every dual option:
// per-call beats the communicator default, auto-selection fills the gap
// on the NCCL backend, and each tier compiles to its own cache entry.
func TestWithProtocolPrecedenceAndSelection(t *testing.T) {
	tp := resccl.NewTopology(2, 8, resccl.A100())
	comm, err := resccl.NewCommunicator(tp,
		resccl.WithBackend(resccl.BackendNCCL),
		resccl.WithProtocol(resccl.ProtoSimple))
	if err != nil {
		t.Fatal(err)
	}
	// Communicator default wins over auto-selection even at LL sizes.
	small, err := comm.AllReduce(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if small.Protocol != resccl.ProtoSimple {
		t.Errorf("communicator-forced Simple ran %s", small.Protocol)
	}
	// Per-call option beats the communicator default.
	forced, err := comm.AllReduce(128<<10, resccl.WithProtocol(resccl.ProtoLL128))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Protocol != resccl.ProtoLL128 {
		t.Errorf("per-call LL128 ran %s", forced.Protocol)
	}
	if forced.Completion >= small.Completion {
		t.Errorf("LL128 at 128KiB took %v, should beat Simple's %v", forced.Completion, small.Completion)
	}
	// Per-call auto restores size-based selection: LL at 128 KiB.
	auto, err := comm.AllReduce(128<<10, resccl.WithProtocol(resccl.ProtoAuto))
	if err != nil {
		t.Fatal(err)
	}
	if auto.Protocol != resccl.ProtoLL {
		t.Errorf("auto at 128KiB ran %s, want LL", auto.Protocol)
	}
	// Three protocols → three distinct plan-cache entries, no collisions.
	if st := comm.PlanCacheStats(); st.Entries != 3 || st.Misses != 3 {
		t.Errorf("cache stats = %+v, want 3 entries / 3 misses", st)
	}
	// The per-call override must not stick to the communicator.
	again, err := comm.AllReduce(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if again.Protocol != resccl.ProtoSimple {
		t.Errorf("per-call protocol leaked into communicator state: %s", again.Protocol)
	}
}

// Auto-selection is an NCCL-backend behaviour: the ResCCL backend keeps
// auto (Simple-cost) plans at every size unless a tier is forced.
func TestProtocolAutoOnlyOnNCCL(t *testing.T) {
	tp := resccl.NewTopology(2, 8, resccl.A100())
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		t.Fatal(err)
	}
	run, err := comm.AllReduce(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if run.Protocol != resccl.ProtoAuto {
		t.Errorf("ResCCL backend auto-selected %s; auto must stay auto", run.Protocol)
	}
	forced, err := comm.AllReduce(128<<10, resccl.WithProtocol(resccl.ProtoLL))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Protocol != resccl.ProtoLL {
		t.Errorf("forced LL on ResCCL ran %s", forced.Protocol)
	}
	if forced.Completion >= run.Completion {
		t.Errorf("forced LL at 128KiB took %v, should beat auto's %v", forced.Completion, run.Completion)
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := resccl.NewCommunicator(nil); !errors.Is(err, resccl.ErrNilTopology) {
		t.Errorf("nil topology: got %v, want ErrNilTopology", err)
	}
	tp := resccl.NewTopology(1, 4, resccl.A100())
	if _, err := resccl.NewCommunicator(tp, resccl.WithBackend(resccl.BackendKind(99))); !errors.Is(err, resccl.ErrUnknownBackend) {
		t.Errorf("bad backend: got %v, want ErrUnknownBackend", err)
	}
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.AllReduce(0); !errors.Is(err, resccl.ErrInvalidBuffer) {
		t.Errorf("zero buffer: got %v, want ErrInvalidBuffer", err)
	}
	if _, err := comm.AllGather(-1); !errors.Is(err, resccl.ErrInvalidBuffer) {
		t.Errorf("negative buffer: got %v, want ErrInvalidBuffer", err)
	}
	if _, err := resccl.SimulateTraining(resccl.TrainConfig{}, resccl.BackendKind(99)); !errors.Is(err, resccl.ErrUnknownBackend) {
		t.Errorf("training bad backend: got %v, want ErrUnknownBackend", err)
	}
	if _, err := resccl.BuildAlgorithm("no-such-algorithm", 8); !errors.Is(err, resccl.ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: got %v, want ErrUnknownAlgorithm", err)
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	names := resccl.AlgorithmNames()
	if len(names) < 15 {
		t.Errorf("registry has %d algorithms, want >= 15", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	infos := resccl.AlgorithmRegistry()
	if len(infos) != len(names) {
		t.Errorf("AlgorithmRegistry has %d entries, AlgorithmNames %d", len(infos), len(names))
	}
	algo, err := resccl.BuildAlgorithm("hm-allreduce", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if algo.NRanks != 8 {
		t.Errorf("hm-allreduce(2,4) has %d ranks, want 8", algo.NRanks)
	}
	// Wrong parameter count must be rejected, not silently defaulted.
	if _, err := resccl.BuildAlgorithm("hm-allreduce", 8); err == nil {
		t.Error("hm-allreduce with 1 param should fail (wants nodes, gpus)")
	}
	// The built algorithm must run through the public API.
	comm := newComm(t, resccl.BackendResCCL)
	if _, err := comm.RunAlgorithm(algo, 64<<20); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimelineExport(t *testing.T) {
	comm := newComm(t, resccl.BackendResCCL)
	plain, err := comm.AllReduce(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Timeline() != nil {
		t.Error("timeline recorded without WithTimeline")
	}
	run, err := comm.AllReduce(64<<20, resccl.WithTimeline())
	if err != nil {
		t.Fatal(err)
	}
	tl := run.Timeline()
	if tl == nil {
		t.Fatal("WithTimeline produced no timeline")
	}
	if len(tl.TBs) == 0 || len(tl.Links) == 0 {
		t.Fatalf("timeline has %d TB tracks and %d link tracks, want >= 1 of each", len(tl.TBs), len(tl.Links))
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("Run.Timeline Chrome export is not valid JSON")
	}
}

func TestTraceSinkAndMetrics(t *testing.T) {
	tr := resccl.NewTrace()
	m := resccl.NewMetrics()
	comm := newComm(t, resccl.BackendResCCL)
	if _, err := comm.AllReduce(64<<20, resccl.WithTraceSink(tr), resccl.WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Timelines()); n != 1 {
		t.Errorf("trace sink collected %d timelines, want 1", n)
	}
	var compile, execute bool
	for _, sp := range tr.Spans() {
		switch sp.Cat {
		case "compile":
			compile = true
		case "execute":
			execute = true
		}
	}
	if !compile || !execute {
		t.Errorf("spans missing categories: compile=%v execute=%v", compile, execute)
	}
	if got := m.Counter("sim.runs"); got != 1 {
		t.Errorf("sim.runs = %d, want 1", got)
	}
	if got := m.Counter("plan_cache.misses"); got != 1 {
		t.Errorf("plan_cache.misses = %d, want 1", got)
	}
	if m.Counter("sim.events") == 0 {
		t.Error("sim.events not counted")
	}
	// Second identical call hits the plan cache.
	if _, err := comm.AllReduce(64<<20, resccl.WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("plan_cache.hits"); got != 1 {
		t.Errorf("plan_cache.hits = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("WriteChrome output is not valid JSON")
	}
}

// TestPlanCacheStructuralKey guards the fix for the plan-cache collision:
// two different algorithms sharing name, operator, rank count and
// transfer count must not share a cache entry. The direct and chain
// broadcasts below collide on every field of the old tuple key.
func TestPlanCacheStructuralKey(t *testing.T) {
	direct := `
def ResCCLAlgo(nRanks=8, AlgoName="Bcast", OpType="Broadcast"):
    for c in range(0, 8):
        for r in range(1, 8):
            transfer(0, r, 0, c, recv)
`
	chain := `
def ResCCLAlgo(nRanks=8, AlgoName="Bcast", OpType="Broadcast"):
    for c in range(0, 8):
        for r in range(0, 7):
            transfer(r, r+1, r, c, recv)
`
	a1, err := resccl.CompileLang(direct)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := resccl.CompileLang(chain)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Name != a2.Name || a1.Op != a2.Op || a1.NRanks != a2.NRanks || len(a1.Transfers) != len(a2.Transfers) {
		t.Fatalf("test algorithms no longer collide on the legacy key: %s/%v/%d/%d vs %s/%v/%d/%d",
			a1.Name, a1.Op, a1.NRanks, len(a1.Transfers), a2.Name, a2.Op, a2.NRanks, len(a2.Transfers))
	}
	comm := newComm(t, resccl.BackendResCCL)
	r1, err := comm.RunAlgorithm(a1, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := comm.RunAlgorithm(a2, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	st := comm.PlanCacheStats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("cache stats = %d hits / %d misses, want 0/2: structurally different algorithms collided", st.Hits, st.Misses)
	}
	if st.Entries != 2 {
		t.Errorf("cache entries = %d, want 2", st.Entries)
	}
	// Direct and chain broadcasts have different critical paths; a
	// collision would make these identical.
	if r1.Completion == r2.Completion {
		t.Error("direct and chain broadcast completed identically — plan cache likely collided")
	}
}

func TestRegistryListsSynthesizedPlans(t *testing.T) {
	names := strings.Join(resccl.AlgorithmNames(), " ")
	for _, want := range []string{"ring-allreduce", "synth:taccl-allreduce", "synth:teccl-allgather"} {
		if !strings.Contains(names, want) {
			t.Errorf("registry missing %s", want)
		}
	}
	if _, err := resccl.BuildAlgorithm("synth:taccl-allreduce", 2, 8); err != nil {
		t.Errorf("promoted synthesized plan does not build: %v", err)
	}
	// Sketch plans build by name alone — the genome encodes the shape.
	algo, err := resccl.BuildAlgorithm("synth:sketch/ar/2x8/im-er-s1-r6")
	if err != nil {
		t.Fatalf("sketch plan by name: %v", err)
	}
	if algo.NRanks != 16 {
		t.Errorf("sketch plan ranks = %d, want 16", algo.NRanks)
	}
	if _, err := resccl.BuildAlgorithm("synth:sketch/ar/2x8/im-er-s1-r6", 16); err == nil {
		t.Error("sketch plan accepted parameters")
	}
}
