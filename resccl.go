// Package resccl is a reproduction of "ResCCL: Resource-Efficient
// Scheduling for Collective Communication" (SIGCOMM 2025): a collective
// communication library backend that compiles algorithm logic — written
// in the ResCCLang DSL or built programmatically — into resource-
// efficient execution plans via primitive-level HPDS scheduling,
// flexible state-based thread-block allocation and lightweight kernel
// generation, and executes them on a deterministic flow-level cluster
// simulator standing in for the GPU fabric.
//
// The headline entry point is the Communicator:
//
//	tp := resccl.NewTopology(2, 8, resccl.A100())
//	comm, err := resccl.NewCommunicator(tp)
//	run, err := comm.AllReduce(1 << 30) // 1 GiB per rank
//	fmt.Println(run.AlgoBandwidth())    // bytes/s
//
// Backends other than ResCCL (the NCCL-like and MSCCL-like baselines of
// the paper) are available through WithBackend for comparisons, and
// custom algorithms run through RunAlgorithm or CompileLang.
package resccl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/lang"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/rt"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/trace"
	"github.com/resccl/resccl/internal/tune"
)

// Op identifies a collective operator.
type Op = ir.OpType

// Collective operators.
const (
	AllGather     = ir.OpAllGather
	AllReduce     = ir.OpAllReduce
	ReduceScatter = ir.OpReduceScatter
	Broadcast     = ir.OpBroadcast
	AllToAll      = ir.OpAllToAll
)

// Protocol is an NCCL-style transport protocol tier. LL trades half the
// wire bandwidth for the lowest per-chunk latency, LL128 keeps 120/128
// of the bandwidth at moderate latency, Simple runs at full bandwidth
// with the full handshake cost. ProtoAuto (the default) lets the NCCL
// backend pick by message size, as the real library does; force a tier
// with WithProtocol.
type Protocol = ir.Protocol

// Protocol tiers.
const (
	ProtoAuto   = ir.ProtoAuto
	ProtoLL     = ir.ProtoLL
	ProtoLL128  = ir.ProtoLL128
	ProtoSimple = ir.ProtoSimple
)

// Algorithm is a collective communication algorithm: the data-transfer
// plan between GPUs, independent of execution policy.
type Algorithm = ir.Algorithm

// Rank identifies a GPU within the communicator.
type Rank = ir.Rank

// Topology describes the simulated cluster fabric.
type Topology = topo.Topology

// Profile bundles hardware constants for one GPU generation.
type Profile = topo.Profile

// A100 returns the paper's primary testbed profile (A100 + NVSwitch +
// 200 Gbps RoCE).
func A100() Profile { return topo.A100() }

// V100 returns the heterogeneous-cluster profile (V100 + 100 Gbps RoCE).
func V100() Profile { return topo.V100() }

// H100 returns a DGX-H100 class profile (450 GB/s NVSwitch, 400 Gbps
// InfiniBand).
func H100() Profile { return topo.H100() }

// NewTopology builds a cluster of nNodes servers × gpusPerNode GPUs.
func NewTopology(nNodes, gpusPerNode int, p Profile) *Topology {
	return topo.New(nNodes, gpusPerNode, p)
}

// CompileLang compiles ResCCLang source into an Algorithm.
func CompileLang(src string) (*Algorithm, error) { return lang.Compile(src) }

// BackendKind selects the execution backend.
type BackendKind int

// Available backends.
const (
	// BackendResCCL is the paper's backend: HPDS scheduling, state-based
	// TB allocation, direct kernels.
	BackendResCCL BackendKind = iota
	// BackendNCCL emulates the vendor-standard library (channelized
	// rings, interpreter, connection TBs).
	BackendNCCL
	// BackendMSCCL emulates Microsoft's MSCCL runtime (custom
	// algorithms on the NCCL-style backend, stage-level channels).
	BackendMSCCL
)

func (k BackendKind) String() string {
	switch k {
	case BackendResCCL:
		return "ResCCL"
	case BackendNCCL:
		return "NCCL"
	case BackendMSCCL:
		return "MSCCL"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// Communicator executes collectives over a fixed topology, caching
// compiled plans by structural fingerprint.
type Communicator struct {
	topo *Topology
	kind BackendKind
	// def holds communicator-wide run defaults; per-call RunOptions
	// overlay it (options.go).
	def runSettings

	backend backend.Backend
	cache   *backend.Cache

	// Lazily autotuned dispatch table (WithAutotune / Tune); the sweep
	// runs at most once per communicator, error included.
	tuneOnce sync.Once
	tuned    *tune.Table
	tuneErr  error
}

// NewCommunicator creates a communicator over tp.
func NewCommunicator(tp *Topology, opts ...Option) (*Communicator, error) {
	if tp == nil {
		return nil, ErrNilTopology
	}
	c := &Communicator{
		topo:  tp,
		kind:  BackendResCCL,
		def:   runSettings{chunkBytes: 1 << 20},
		cache: backend.NewCache(),
	}
	for _, o := range opts {
		o.applyComm(c)
	}
	switch c.kind {
	case BackendResCCL:
		c.backend = backend.NewResCCL()
	case BackendNCCL:
		c.backend = backend.NewNCCL()
	case BackendMSCCL:
		c.backend = backend.NewMSCCL()
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownBackend, c.kind)
	}
	return c, nil
}

// Backend returns the communicator's backend name.
func (c *Communicator) Backend() string { return c.backend.Name() }

// NRanks returns the communicator size.
func (c *Communicator) NRanks() int { return c.topo.NRanks() }

// Run is the outcome of one collective execution.
type Run struct {
	// Backend identifies the backend that executed the plan.
	Backend string
	// BufferBytes is the per-rank payload.
	BufferBytes int64
	// Protocol is the transport protocol tier the plan ran under —
	// the auto-selected tier when the call left it to the backend, or
	// the forced tier of WithProtocol. ProtoAuto means the backend does
	// not distinguish tiers (Simple semantics).
	Protocol Protocol
	// Completion is the simulated wall time of the collective.
	Completion time.Duration

	algorithm string
	result    *sim.Result
	util      *trace.Utilization
	timeline  *obs.Timeline
}

// Algorithm returns the name of the executed algorithm. For calls
// dispatched through a DispatchTable this is the table's pick — a
// registry name ("hm-allreduce") or an encoded synthesized plan
// ("synth:sketch/…") — so callers can observe what the autotuner chose.
func (r *Run) Algorithm() string { return r.algorithm }

// AlgoBandwidth returns BufferBytes/Completion in bytes/s — the
// "algorithm bandwidth" metric of §5.2.
func (r *Run) AlgoBandwidth() float64 { return r.result.AlgoBW }

// MicroBatches returns how many micro-batches the transfer was split
// into.
func (r *Run) MicroBatches() int { return r.result.Plan.NMicroBatches }

// LinkUtilization returns the mean busy fraction of the links the
// algorithm used (Table 1's metric).
func (r *Run) LinkUtilization() float64 { return r.result.MeanLinkUtilization() }

// Utilization returns the thread-block utilization report (Table 3's
// metrics).
func (r *Run) Utilization() *trace.Utilization { return r.util }

// Timeline returns the run's simulated execution timeline, or nil when
// the run was not configured with WithTimeline or WithTraceSink. Export
// it with Timeline.WriteChrome, or add it to a Trace.
func (r *Run) Timeline() *Timeline { return r.timeline }

// defaultAlgorithm picks the communicator's standard algorithm for an
// operator on its topology: the hierarchical mesh algorithms across
// servers, NVSwitch full-mesh or ring algorithms inside one.
func (c *Communicator) defaultAlgorithm(op Op) (*Algorithm, error) {
	n, g := c.topo.NNodes, c.topo.GPUsPerNode
	multi := n > 1 && g > 1
	switch op {
	case AllGather:
		if multi {
			return expert.HMAllGather(n, g)
		}
		if n == 1 {
			return expert.MeshAllGather(g)
		}
		return expert.RingAllGather(c.topo.NRanks())
	case AllReduce:
		if multi {
			return expert.HMAllReduce(n, g)
		}
		if n == 1 {
			return expert.MeshAllReduce(g)
		}
		return expert.RingAllReduce(c.topo.NRanks())
	case ReduceScatter:
		if multi {
			return expert.HMReduceScatter(n, g)
		}
		return expert.RingReduceScatter(c.topo.NRanks())
	case Broadcast:
		if multi {
			return expert.HierarchicalBroadcast(n, g)
		}
		return expert.BinomialBroadcast(c.topo.NRanks())
	case AllToAll:
		// Direct pairwise exchange: at chunked payload sizes the relay
		// aggregation of HierarchicalAllToAll concentrates NIC load
		// without coalescing messages; it remains available in the
		// Algorithms catalog for footprint-constrained deployments.
		return expert.DirectAllToAll(c.topo.NRanks())
	default:
		return nil, fmt.Errorf("%w: no default for %v", ErrUnknownAlgorithm, op)
	}
}

// AllReduce executes an AllReduce of bufferBytes per rank.
func (c *Communicator) AllReduce(bufferBytes int64, opts ...RunOption) (*Run, error) {
	return c.runOp(AllReduce, bufferBytes, opts)
}

// AllGather executes an AllGather of bufferBytes per rank.
func (c *Communicator) AllGather(bufferBytes int64, opts ...RunOption) (*Run, error) {
	return c.runOp(AllGather, bufferBytes, opts)
}

// ReduceScatter executes a ReduceScatter of bufferBytes per rank.
func (c *Communicator) ReduceScatter(bufferBytes int64, opts ...RunOption) (*Run, error) {
	return c.runOp(ReduceScatter, bufferBytes, opts)
}

// Broadcast sends rank 0's bufferBytes to every rank.
func (c *Communicator) Broadcast(bufferBytes int64, opts ...RunOption) (*Run, error) {
	return c.runOp(Broadcast, bufferBytes, opts)
}

// AllToAll exchanges personalized segments: every rank sends bufferBytes
// split into per-destination segments (the MoE dispatch pattern).
func (c *Communicator) AllToAll(bufferBytes int64, opts ...RunOption) (*Run, error) {
	return c.runOp(AllToAll, bufferBytes, opts)
}

// runOp executes an operator-level call. With a dispatch table in
// effect (WithDispatchTable or WithAutotune, per call or
// communicator-wide) the table picks the algorithm and protocol tier
// for the call's size; otherwise the built-in defaultAlgorithm runs.
func (c *Communicator) runOp(op Op, bufferBytes int64, opts []RunOption) (*Run, error) {
	if bufferBytes <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidBuffer, bufferBytes)
	}
	s := c.settings(opts)
	table, err := c.dispatchTable(&s)
	if err != nil {
		return nil, err
	}
	if table != nil {
		if e, ok := table.Lookup(op, bufferBytes); ok {
			algo, err := c.dispatch(table, e, &s)
			if err != nil {
				return nil, err
			}
			return c.run(algo, bufferBytes, s)
		}
		// The table has no bucket for this operator (a sweep over a
		// subset of ops); fall through to the built-in default.
	}
	algo, err := c.defaultAlgorithm(op)
	if err != nil {
		return nil, err
	}
	return c.run(algo, bufferBytes, s)
}

// RunAlgorithm compiles (or reuses a cached plan for) the algorithm and
// executes it with the given per-rank payload. Per-call RunOptions
// override the communicator's defaults. Explicit algorithms bypass
// dispatch tables — the caller already chose the plan.
func (c *Communicator) RunAlgorithm(algo *Algorithm, bufferBytes int64, opts ...RunOption) (*Run, error) {
	if bufferBytes <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidBuffer, bufferBytes)
	}
	return c.run(algo, bufferBytes, c.settings(opts))
}

func (c *Communicator) run(algo *Algorithm, bufferBytes int64, s runSettings) (*Run, error) {
	plan, err := c.plan(algo, &s, c.resolveProtocol(&s, algo.Op, bufferBytes))
	if err != nil {
		return nil, err
	}
	chunk := s.chunkBytes
	if s.autoTune {
		if tuned, err := core.TuneChunkSize(plan.Kernel.Graph, bufferBytes); err == nil {
			chunk = tuned
		}
	}
	span := s.trace.StartSpan("execute", "sim/"+plan.Algo.Name,
		obs.Attr{Key: "backend", Value: plan.Backend})
	res, err := sim.Run(sim.Config{
		Topo:           c.topo,
		Kernel:         plan.Kernel,
		BufferBytes:    bufferBytes,
		ChunkBytes:     chunk,
		RecordTimeline: s.timeline,
	})
	span.End()
	if err != nil {
		return nil, err
	}
	s.metrics.Add("sim.runs", 1)
	s.metrics.Add("sim.events", int64(res.Events))
	s.metrics.Add("sim.instances", int64(res.Instances))
	trace.LinkBusyGauges(s.metrics, c.topo, res.LinkBusy)
	name := plan.Algo.Name
	if s.dispatchName != "" {
		name = s.dispatchName
	}
	run := &Run{
		Backend:     plan.Backend,
		BufferBytes: bufferBytes,
		Protocol:    plan.Kernel.Protocol,
		Completion:  time.Duration(res.Completion * float64(time.Second)),
		algorithm:   name,
		result:      res,
		util:        trace.Analyze(plan.Kernel, res, plan.Backend),
	}
	if s.timeline {
		run.timeline = trace.BuildTimeline(plan.Backend+"/"+plan.Algo.Name, plan.Kernel, c.topo, res)
		s.trace.AddTimeline(run.timeline)
	}
	return run, nil
}

// resolveProtocol turns the call's protocol setting into a concrete
// request tier: a forced tier passes through; auto on the NCCL backend
// becomes the size-based choice real NCCL's tuning table would make
// (sim.SelectProtocol); auto elsewhere stays auto, which the
// simulator treats as Simple — ResCCL and MSCCL plans are unchanged
// unless a tier is forced.
func (c *Communicator) resolveProtocol(s *runSettings, op Op, bufferBytes int64) ir.Protocol {
	if s.protocol.Forced() || c.kind != BackendNCCL {
		return s.protocol
	}
	return sim.SelectProtocol(c.topo, op, bufferBytes)
}

// plan compiles the algorithm with the communicator's backend through
// the structural plan cache (keyed on backend configuration, algorithm
// transfers, topology and — for dispatched runs — the dispatch table's
// content hash, not just the algorithm's name). On a miss it records
// the backend's compile stages into the call's trace sink and counts
// cache traffic into its metrics.
func (c *Communicator) plan(algo *Algorithm, s *runSettings, proto ir.Protocol) (*backend.Plan, error) {
	p, hit, err := c.cache.CompileNoted(context.Background(), c.backend, backend.Request{
		Algo: algo, Topo: c.topo, Protocol: proto, TuneHash: s.tuneHash,
	})
	if err != nil {
		return nil, err
	}
	if hit {
		s.metrics.Add("plan_cache.hits", 1)
	} else {
		s.metrics.Add("plan_cache.misses", 1)
		s.trace.AddStages("compile", "compile/"+algo.Name, p.Stages)
	}
	return p, nil
}

// PlanCacheStats snapshots the communicator's plan-cache counters.
func (c *Communicator) PlanCacheStats() backend.CacheStats { return c.cache.Stats() }

// Verify checks an algorithm's correctness on the data plane against
// its operator postcondition (without simulating timing).
func Verify(algo *Algorithm) error { return collective.Check(algo) }

// EmitLang renders an algorithm back to ResCCLang source (one transfer
// statement per task). CompileLang(EmitLang(a)) reproduces a's transfer
// set.
func EmitLang(algo *Algorithm) (string, error) { return lang.Emit(algo) }

// EmbedAlgorithm remaps an algorithm written for a sub-communicator onto
// the full cluster: ranks[i] is the global rank playing the algorithm's
// rank i. Use it to build process-group collectives (tensor/data
// parallel groups) that RunConcurrently can schedule side by side.
func EmbedAlgorithm(algo *Algorithm, ranks []ir.Rank, fullRanks int) (*Algorithm, error) {
	return ir.Embed(algo, ranks, fullRanks)
}

// RunConcurrently executes several algorithms side by side on the
// communicator's cluster, sharing links and NICs — process groups or
// co-located tenants. bufferBytes[i] is the payload of algos[i]. The
// returned runs are in input order; each Run's Completion is that
// collective's own finish time under contention.
func (c *Communicator) RunConcurrently(algos []*Algorithm, bufferBytes []int64, opts ...RunOption) ([]*Run, error) {
	if len(algos) == 0 || len(algos) != len(bufferBytes) {
		return nil, fmt.Errorf("resccl: need equal, non-zero numbers of algorithms and buffer sizes")
	}
	s := c.settings(opts)
	plans := make([]*backend.Plan, len(algos))
	sessions := make([]sim.Session, len(algos))
	for i, algo := range algos {
		if bufferBytes[i] <= 0 {
			return nil, fmt.Errorf("%w: buffer %d", ErrInvalidBuffer, i)
		}
		plan, err := c.plan(algo, &s, c.resolveProtocol(&s, algo.Op, bufferBytes[i]))
		if err != nil {
			return nil, err
		}
		plans[i] = plan
		sessions[i] = sim.Session{Kernel: plan.Kernel, BufferBytes: bufferBytes[i], ChunkBytes: s.chunkBytes}
	}
	span := s.trace.StartSpan("execute", fmt.Sprintf("sim/concurrent(%d)", len(algos)))
	mr, err := sim.RunConcurrent(sim.MultiConfig{Topo: c.topo, Sessions: sessions, RecordTimeline: s.timeline})
	span.End()
	if err != nil {
		return nil, err
	}
	s.metrics.Add("sim.runs", 1)
	s.metrics.Add("sim.events", int64(mr.Events))
	trace.LinkBusyGauges(s.metrics, c.topo, mr.LinkBusy)
	runs := make([]*Run, len(algos))
	for i, res := range mr.Sessions {
		plan := plans[i]
		s.metrics.Add("sim.instances", int64(res.Instances))
		runs[i] = &Run{
			Backend:     plan.Backend,
			BufferBytes: bufferBytes[i],
			Protocol:    plan.Kernel.Protocol,
			Completion:  time.Duration(res.Completion * float64(time.Second)),
			algorithm:   plan.Algo.Name,
			result:      res,
			util:        trace.Analyze(plan.Kernel, res, plan.Backend),
		}
		if s.timeline {
			name := fmt.Sprintf("session%d/%s/%s", i, plan.Backend, plan.Algo.Name)
			runs[i].timeline = trace.BuildTimeline(name, plan.Kernel, c.topo, res)
			s.trace.AddTimeline(runs[i].timeline)
		}
	}
	return runs, nil
}

// ExecuteAlgorithm compiles the algorithm with the communicator's
// backend and executes the resulting kernel on the concurrent data-plane
// runtime: one goroutine per thread block, real buffer movement,
// cross-TB semaphores. It verifies every micro-batch's final state
// against the operator postcondition — proving the compiled plan is
// deadlock-free and semantically correct, independent of the timing
// simulator.
func (c *Communicator) ExecuteAlgorithm(algo *Algorithm, microBatches int, opts ...RunOption) error {
	// No payload size exists here, so auto stays auto: the data-plane
	// runtime moves symbolic chunks and has no protocol dimension.
	s := c.settings(opts)
	plan, err := c.plan(algo, &s, s.protocol)
	if err != nil {
		return err
	}
	span := s.trace.StartSpan("execute", "rt/"+plan.Algo.Name)
	res, err := rt.Execute(rt.Config{Kernel: plan.Kernel, MicroBatches: microBatches})
	span.End()
	if err != nil {
		return err
	}
	s.metrics.Add("rt.instances", int64(res.Instances))
	s.metrics.Add("rt.replans", int64(len(res.ReplanEvents)))
	return res.Verify()
}
