package resccl

import (
	"context"
	"fmt"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/tune"
)

// DispatchTable maps (operator, message size) to the fastest measured
// (algorithm, protocol) pair for one topology. Tables come from the
// autotuning sweep — Communicator.Tune, `ressclc -tune`, or a
// previously saved table via LoadDispatchTable — and are applied with
// WithDispatchTable (or implicitly with WithAutotune), after which the
// operator-level calls (AllReduce, AllGather, …) automatically run the
// winning algorithm and protocol tier for each call's size.
type DispatchTable struct {
	t *tune.Table
}

// LoadDispatchTable parses and validates a dispatch table previously
// serialized with MarshalJSON (for example one written by
// `ressclc -tune`).
func LoadDispatchTable(data []byte) (*DispatchTable, error) {
	t, err := tune.Load(data)
	if err != nil {
		return nil, err
	}
	return &DispatchTable{t: t}, nil
}

// MarshalJSON renders the table as deterministic, indented JSON: the
// same topology, sweep options and seed always produce byte-identical
// output, so regenerated tables diff cleanly and round-trip through
// LoadDispatchTable.
func (d *DispatchTable) MarshalJSON() ([]byte, error) { return d.t.MarshalJSON() }

// Topology describes the fabric the table was tuned for. Communicators
// over a different topology refuse the table.
func (d *DispatchTable) Topology() string { return d.t.Topology }

// Hash digests the table's full content. It is folded into the
// plan-cache fingerprint of every dispatched run, so plans selected by
// different table generations never collide in the cache.
func (d *DispatchTable) Hash() string { return d.t.Hash() }

// Tune runs the full autotuning sweep on the communicator's topology
// and returns the resulting dispatch table: every registered algorithm
// plus the sketch synthesizer's verified candidates, measured across
// the default size grid under every protocol tier by the deterministic
// simulator. The sweep runs once per communicator; WithAutotune and
// repeated Tune calls share the cached result. Sweeps always measure
// ResCCL-backend plans — the table drives algorithm selection for this
// library's own backend, not the baseline emulations.
func (c *Communicator) Tune() (*DispatchTable, error) {
	t, err := c.autotuned()
	if err != nil {
		return nil, err
	}
	return &DispatchTable{t: t}, nil
}

// autotuned lazily runs the sweep, caching table and error alike.
func (c *Communicator) autotuned() (*tune.Table, error) {
	c.tuneOnce.Do(func() {
		res, err := tune.Sweep(context.Background(), c.topo, tune.Options{Parallel: true})
		if err != nil {
			c.tuneErr = fmt.Errorf("resccl: autotune: %w", err)
			return
		}
		c.tuned = res.Table
	})
	return c.tuned, c.tuneErr
}

// dispatchTable resolves the effective table for one call: an explicit
// WithDispatchTable table (checked against the communicator's
// topology), the lazily autotuned table under WithAutotune, or nil when
// the call dispatches by the built-in defaults.
func (c *Communicator) dispatchTable(s *runSettings) (*tune.Table, error) {
	if s.dispatch != nil {
		if got := c.topo.String(); s.dispatch.Topology != got {
			return nil, fmt.Errorf("%w: table tuned for %q, communicator runs %q",
				ErrDispatchTable, s.dispatch.Topology, got)
		}
		return s.dispatch, nil
	}
	if s.dispatchAuto {
		return c.autotuned()
	}
	return nil, nil
}

// buildNamed constructs a dispatch-table algorithm on the
// communicator's shape: synthesized sketch plans rebuild from their
// encoded genome, everything else resolves through the registry.
func (c *Communicator) buildNamed(name string) (*Algorithm, error) {
	if synth.IsSketchName(name) {
		algo, err := synth.BuildNamed(name)
		if err != nil {
			return nil, err
		}
		if algo.NRanks != c.topo.NRanks() {
			return nil, fmt.Errorf("%w: %q is a %d-rank plan, communicator has %d ranks",
				ErrDispatchTable, name, algo.NRanks, c.topo.NRanks())
		}
		return algo, nil
	}
	b, ok := expert.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
	}
	params := []int{c.topo.NRanks()}
	if b.NParams == 2 {
		params = []int{c.topo.NNodes, c.topo.GPUsPerNode}
	}
	return b.Build(params...)
}

// dispatch applies a table entry to the call settings and builds the
// selected algorithm. A forced WithProtocol still wins over the table's
// tier — the same precedence WithProtocol has over the backend's
// size-based auto-selection.
func (c *Communicator) dispatch(table *tune.Table, e tune.Entry, s *runSettings) (*Algorithm, error) {
	algo, err := c.buildNamed(e.Algorithm)
	if err != nil {
		return nil, err
	}
	if !s.protocol.Forced() {
		p, err := ir.ParseProtocol(e.Protocol)
		if err != nil {
			return nil, fmt.Errorf("%w: entry for %s: %v", ErrDispatchTable, e.Op, err)
		}
		s.protocol = p
	}
	s.tuneHash = table.Hash()
	s.dispatchName = e.Algorithm
	return algo, nil
}
