package resccl

import (
	"errors"

	"github.com/resccl/resccl/internal/rt"
)

// Sentinel errors returned by the public API. Wrapped errors carry
// context (the offending value, the operator); match with errors.Is.
var (
	// ErrNilTopology is returned by NewCommunicator for a nil topology.
	ErrNilTopology = errors.New("resccl: nil topology")
	// ErrInvalidBuffer is returned when a collective is invoked with a
	// non-positive buffer size.
	ErrInvalidBuffer = errors.New("resccl: buffer size must be positive")
	// ErrUnknownBackend is returned for a BackendKind outside the
	// declared constants.
	ErrUnknownBackend = errors.New("resccl: unknown backend")
	// ErrUnknownAlgorithm is returned by BuildAlgorithm for a name not in
	// the registry, and by defaultAlgorithm selection for an operator
	// with no default.
	ErrUnknownAlgorithm = errors.New("resccl: unknown algorithm")
	// ErrDispatchTable is returned when a dispatch table cannot serve
	// the communicator: it was tuned for a different topology, or an
	// entry is inconsistent with the communicator's shape.
	ErrDispatchTable = errors.New("resccl: dispatch table mismatch")
)

// Runtime execution errors, re-exported so callers can classify
// ExecuteAlgorithm failures without importing internal packages.
var (
	// ErrDeadlock reports that the data-plane runtime detected a cyclic
	// wait between thread blocks.
	ErrDeadlock = rt.ErrDeadlock
	// ErrPartitioned reports that injected faults disconnected the
	// surviving ranks, making recovery impossible.
	ErrPartitioned = rt.ErrPartitioned
	// ErrUnrecoverable reports that plan-level recovery could not repair
	// the collective after faults.
	ErrUnrecoverable = rt.ErrUnrecoverable
)
