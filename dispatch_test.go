package resccl_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/resccl/resccl"
)

// tableJSON renders a hand-authored dispatch table for tp.
func tableJSON(tp *resccl.Topology, entries string) []byte {
	return []byte(fmt.Sprintf(`{
  "version": 1,
  "topology": %q,
  "seed": 1,
  "entries": [%s]
}`, tp.String(), entries))
}

func TestLoadDispatchTableRoundTrip(t *testing.T) {
	tp := resccl.NewTopology(1, 4, resccl.A100())
	data := tableJSON(tp, `
    {"op": "Allreduce", "algorithm": "ring-allreduce", "protocol": "Simple", "probe_bytes": 1048576, "completion_us": 10}`)
	d, err := resccl.LoadDispatchTable(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := resccl.LoadDispatchTable(out)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := back.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, out2) {
		t.Error("marshal/load round trip not byte-stable")
	}
	if d.Hash() != back.Hash() {
		t.Error("hash changed across round trip")
	}
	if d.Topology() != tp.String() {
		t.Errorf("Topology() = %q, want %q", d.Topology(), tp.String())
	}
	if _, err := resccl.LoadDispatchTable([]byte(`{"version": 1}`)); err == nil {
		t.Error("empty table accepted")
	}
}

func TestDispatchTableTopologyMismatch(t *testing.T) {
	other := resccl.NewTopology(2, 8, resccl.A100())
	data := tableJSON(other, `
    {"op": "Allreduce", "algorithm": "hm-allreduce", "protocol": "Simple", "probe_bytes": 1048576, "completion_us": 10}`)
	d, err := resccl.LoadDispatchTable(data)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := resccl.NewCommunicator(resccl.NewTopology(1, 4, resccl.A100()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.AllReduce(1<<20, resccl.WithDispatchTable(d)); !errors.Is(err, resccl.ErrDispatchTable) {
		t.Errorf("mismatched topology: got %v, want ErrDispatchTable", err)
	}
}

func TestDispatchPicksByOpAndSize(t *testing.T) {
	tp := resccl.NewTopology(1, 4, resccl.A100())
	data := tableJSON(tp, `
    {"op": "Allreduce", "max_bytes": 4194304, "algorithm": "ring-allreduce", "protocol": "LL", "probe_bytes": 1048576, "completion_us": 10},
    {"op": "Allreduce", "algorithm": "mesh-allreduce", "protocol": "Simple", "probe_bytes": 67108864, "completion_us": 100}`)
	d, err := resccl.LoadDispatchTable(data)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := resccl.NewCommunicator(tp, resccl.WithDispatchTable(d))
	if err != nil {
		t.Fatal(err)
	}
	small, err := comm.AllReduce(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if small.Algorithm() != "ring-allreduce" || small.Protocol != resccl.ProtoLL {
		t.Errorf("small call ran %s/%v, want ring-allreduce/LL", small.Algorithm(), small.Protocol)
	}
	large, err := comm.AllReduce(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if large.Algorithm() != "mesh-allreduce" || large.Protocol != resccl.ProtoSimple {
		t.Errorf("large call ran %s/%v, want mesh-allreduce/Simple", large.Algorithm(), large.Protocol)
	}
	// Ops without a bucket fall back to the built-in default.
	ag, err := comm.AllGather(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Algorithm() == "" {
		t.Error("fallback run lost its algorithm name")
	}
}

func TestDispatchPrecedence(t *testing.T) {
	tp := resccl.NewTopology(1, 4, resccl.A100())
	defTable, err := resccl.LoadDispatchTable(tableJSON(tp, `
    {"op": "Allreduce", "algorithm": "ring-allreduce", "protocol": "LL", "probe_bytes": 1048576, "completion_us": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	callTable, err := resccl.LoadDispatchTable(tableJSON(tp, `
    {"op": "Allreduce", "algorithm": "mesh-allreduce", "protocol": "Simple", "probe_bytes": 1048576, "completion_us": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	comm, err := resccl.NewCommunicator(tp, resccl.WithDispatchTable(defTable))
	if err != nil {
		t.Fatal(err)
	}

	// The communicator default applies when the call passes nothing.
	run, err := comm.AllReduce(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if run.Algorithm() != "ring-allreduce" {
		t.Errorf("default table ignored: ran %s", run.Algorithm())
	}
	// A per-call table beats the communicator default.
	run, err = comm.AllReduce(1<<20, resccl.WithDispatchTable(callTable))
	if err != nil {
		t.Fatal(err)
	}
	if run.Algorithm() != "mesh-allreduce" {
		t.Errorf("per-call table lost: ran %s", run.Algorithm())
	}
	// A nil per-call table restores the built-in default selection.
	run, err = comm.AllReduce(1<<20, resccl.WithDispatchTable(nil))
	if err != nil {
		t.Fatal(err)
	}
	if run.Algorithm() != "Mesh-AllReduce" {
		t.Errorf("nil table should restore the built-in default (mesh on one node), ran %s", run.Algorithm())
	}
	// A forced WithProtocol beats the table's tier but keeps its
	// algorithm pick — the WithProtocol precedence contract.
	run, err = comm.AllReduce(1<<20, resccl.WithProtocol(resccl.ProtoSimple))
	if err != nil {
		t.Fatal(err)
	}
	if run.Algorithm() != "ring-allreduce" || run.Protocol != resccl.ProtoSimple {
		t.Errorf("forced protocol: ran %s/%v, want ring-allreduce/Simple", run.Algorithm(), run.Protocol)
	}
}

// TestDispatchTableHashKeysPlanCache is the regression test for the
// stale-plan bug: two table generations that pick the same algorithm
// and tier must not share a cached plan.
func TestDispatchTableHashKeysPlanCache(t *testing.T) {
	tp := resccl.NewTopology(1, 4, resccl.A100())
	entry := `
    {"op": "Allreduce", "algorithm": "ring-allreduce", "protocol": "LL", "probe_bytes": 1048576, "completion_us": %d}`
	gen1, err := resccl.LoadDispatchTable(tableJSON(tp, fmt.Sprintf(entry, 10)))
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := resccl.LoadDispatchTable(tableJSON(tp, fmt.Sprintf(entry, 20)))
	if err != nil {
		t.Fatal(err)
	}
	if gen1.Hash() == gen2.Hash() {
		t.Fatal("distinct tables hash equal")
	}
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.AllReduce(1<<20, resccl.WithDispatchTable(gen1)); err != nil {
		t.Fatal(err)
	}
	if st := comm.PlanCacheStats(); st.Misses != 1 {
		t.Fatalf("first dispatch: %d misses, want 1", st.Misses)
	}
	// Same table again: the plan must be served from cache.
	if _, err := comm.AllReduce(1<<20, resccl.WithDispatchTable(gen1)); err != nil {
		t.Fatal(err)
	}
	if st := comm.PlanCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("repeat dispatch: %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	// A re-tuned table must recompile, not reuse generation 1's plan.
	if _, err := comm.AllReduce(1<<20, resccl.WithDispatchTable(gen2)); err != nil {
		t.Fatal(err)
	}
	if st := comm.PlanCacheStats(); st.Misses != 2 {
		t.Fatalf("re-tuned dispatch: %d misses, want 2 (stale plan served)", st.Misses)
	}
}

// TestAutotuneSelectsSimBest is the end-to-end acceptance: a 2×8 A100
// communicator under WithAutotune must, at every swept grid point,
// run exactly the algorithm and tier the tuner measured fastest — and
// the tuned table must match the pinned golden sweep.
func TestAutotuneSelectsSimBest(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune sweep skipped in -short mode")
	}
	tp := resccl.NewTopology(2, 8, resccl.A100())
	comm, err := resccl.NewCommunicator(tp, resccl.WithAutotune())
	if err != nil {
		t.Fatal(err)
	}
	table, err := comm.Tune()
	if err != nil {
		t.Fatal(err)
	}
	data, err := table.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("internal", "tune", "testdata", "dispatch.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(data, '\n'), golden) {
		t.Error("communicator's autotuned table differs from the golden sweep")
	}
	back, err := resccl.LoadDispatchTable(data)
	if err != nil {
		t.Fatal(err)
	}
	probes := map[string]func(int64) (*resccl.Run, error){
		"Allreduce": func(n int64) (*resccl.Run, error) { return comm.AllReduce(n) },
		"Allgather": func(n int64) (*resccl.Run, error) { return comm.AllGather(n) },
	}
	n := 0
	for _, e := range dispatchEntries(t, back) {
		call, ok := probes[e.Op]
		if !ok {
			t.Fatalf("golden table has unexpected op %q", e.Op)
		}
		run, err := call(e.ProbeBytes)
		if err != nil {
			t.Fatalf("%s @ %d: %v", e.Op, e.ProbeBytes, err)
		}
		if run.Algorithm() != e.Algorithm {
			t.Errorf("%s @ %d: ran %s, tuner chose %s", e.Op, e.ProbeBytes, run.Algorithm(), e.Algorithm)
		}
		if run.Protocol.String() != e.Protocol {
			t.Errorf("%s @ %d: tier %v, tuner chose %s", e.Op, e.ProbeBytes, run.Protocol, e.Protocol)
		}
		n++
	}
	if n == 0 {
		t.Fatal("golden table had no entries")
	}
}

// dispatchEntry mirrors the dispatch-table JSON schema for tests.
type dispatchEntry struct {
	Op           string  `json:"op"`
	MaxBytes     int64   `json:"max_bytes"`
	Algorithm    string  `json:"algorithm"`
	Protocol     string  `json:"protocol"`
	ProbeBytes   int64   `json:"probe_bytes"`
	CompletionUS float64 `json:"completion_us"`
}

func dispatchEntries(t *testing.T, d *resccl.DispatchTable) []dispatchEntry {
	t.Helper()
	data, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Entries []dispatchEntry `json:"entries"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	return wire.Entries
}
