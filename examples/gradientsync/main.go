// Gradient synchronization sweep: the workload that motivates the paper
// — data-parallel gradient AllReduce at sizes from small encoder models
// to multi-billion-parameter LLM shards — executed under all three
// backends on a 4-server cluster, showing where each backend's
// bandwidth saturates and how much SM capacity it holds hostage.
package main

import (
	"fmt"
	"log"

	"github.com/resccl/resccl"
)

func main() {
	tp := resccl.NewTopology(4, 8, resccl.A100())
	fmt.Printf("gradient AllReduce sweep on %d GPUs (4 servers × 8 A100)\n\n", tp.NRanks())

	kinds := []resccl.BackendKind{resccl.BackendNCCL, resccl.BackendMSCCL, resccl.BackendResCCL}
	comms := map[resccl.BackendKind]*resccl.Communicator{}
	for _, k := range kinds {
		c, err := resccl.NewCommunicator(tp, resccl.WithBackend(k))
		if err != nil {
			log.Fatal(err)
		}
		comms[k] = c
	}

	// Gradient sizes: a BERT-large shard (~28 MiB of fp16 gradients per
	// rank) up to a GPT-13B tensor-parallel shard (~3.25 GiB).
	grads := []struct {
		model string
		bytes int64
	}{
		{"BERT-large shard", 28 << 20},
		{"T5-770M shard", 96 << 20},
		{"T5-3B shard", 384 << 20},
		{"GPT-6.7B shard", 1675 << 20},
		{"GPT-13B shard", 3328 << 20},
	}

	fmt.Printf("%-18s %-9s", "gradient", "size")
	for _, k := range kinds {
		fmt.Printf(" %14s", k.String()+" GB/s")
	}
	fmt.Printf(" %11s %9s\n", "TB/GPU R:M", "SM saved")
	for _, g := range grads {
		fmt.Printf("%-18s %-9s", g.model, fmtBytes(g.bytes))
		var resTBs, mscclTBs int
		for _, k := range kinds {
			run, err := comms[k].AllReduce(g.bytes)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %14.1f", run.AlgoBandwidth()/1e9)
			switch k {
			case resccl.BackendMSCCL:
				mscclTBs = run.Utilization().TBs
			case resccl.BackendResCCL:
				resTBs = run.Utilization().TBs
			}
		}
		fmt.Printf(" %5d:%-5d %8.1f%%\n", resTBs, mscclTBs, 100*(1-float64(resTBs)/float64(mscclTBs)))
	}
	fmt.Println("\nTB/GPU R:M — thread blocks per GPU under ResCCL vs MSCCL;")
	fmt.Println("SM saved — streaming-multiprocessor capacity ResCCL returns to computation.")
}

func fmtBytes(b int64) string {
	if b >= 1<<30 {
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	}
	return fmt.Sprintf("%dMiB", b>>20)
}
