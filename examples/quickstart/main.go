// Quickstart: run the standard collectives on a simulated two-server
// A100 cluster with the ResCCL backend and print the achieved algorithm
// bandwidth and resource footprint.
package main

import (
	"fmt"
	"log"

	"github.com/resccl/resccl"
)

func main() {
	// The paper's primary testbed slice: 2 servers × 8 A100 GPUs,
	// NVSwitch inside each server, 200 Gbps RoCE NICs between them.
	tp := resccl.NewTopology(2, 8, resccl.A100())
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communicator: %d ranks, backend %s\n\n", comm.NRanks(), comm.Backend())

	fmt.Printf("%-14s %-10s %12s %14s %10s\n", "collective", "buffer", "time", "algbw (GB/s)", "link util")
	for _, buf := range []int64{64 << 20, 512 << 20, 2 << 30} {
		ag, err := comm.AllGather(buf)
		if err != nil {
			log.Fatal(err)
		}
		ar, err := comm.AllReduce(buf)
		if err != nil {
			log.Fatal(err)
		}
		for _, run := range []*resccl.Run{ag, ar} {
			fmt.Printf("%-14s %-10s %12v %14.1f %9.1f%%\n",
				run.Algorithm(), fmtBytes(run.BufferBytes), run.Completion.Round(1000),
				run.AlgoBandwidth()/1e9, 100*run.LinkUtilization())
		}
	}

	// Resource footprint: thread blocks the plan occupies per GPU and
	// how busy they are (Table 3's metrics).
	run, err := comm.AllReduce(1 << 30)
	if err != nil {
		log.Fatal(err)
	}
	u := run.Utilization()
	fmt.Printf("\nAllReduce resource report: %d TBs per GPU, comm time %.1f%%, avg idle %.1f%%, max idle %.1f%%\n",
		u.TBs, 100*u.CommTime, 100*u.AvgIdle, 100*u.MaxIdle)
}

func fmtBytes(b int64) string {
	if b >= 1<<30 {
		return fmt.Sprintf("%dGiB", b>>30)
	}
	return fmt.Sprintf("%dMiB", b>>20)
}
