// Custom algorithm: write a collective algorithm in ResCCLang (the HM
// AllReduce of the paper's Fig. 16, shrunk to 2×4 GPUs), compile it,
// verify its semantics on the data plane, and execute it — comparing
// the ResCCL backend against the MSCCL-style baseline running the very
// same algorithm.
package main

import (
	"fmt"
	"log"

	"github.com/resccl/resccl"
)

// hmAllReduce is the paper's Fig. 16 program parameterized for 2 nodes
// of 4 GPUs: intra-node full-mesh ReduceScatter, inter-node ring
// ReduceScatter, inter-node ring AllGather, intra-node full-mesh
// AllGather. Note that the program states only algorithm logic — no
// channels, thread blocks or buffers.
const hmAllReduce = `
def ResCCLAlgo(nRanks=8, nChannels=4, nWarps=16, AlgoName="HM", OpType="Allreduce", GPUPerNode=4, NICPerNode=2):
    nNodes = 2
    nGpusperNode = 4
    nChunks = nNodes * nGpusperNode
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = baseStep * (nGpusperNode - 1) + offset
                    transfer(srcRank, dstRank, step, (dstRank + baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + baseStep
                transfer(srcRank, dstRank, step, (srcRank + nChunks - baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + nNodes - 1 + baseStep
                chunkId = (srcRank + nChunks - (baseStep + nNodes - 1) * nGpusperNode) % nChunks
                transfer(srcRank, dstRank, step, chunkId, recv)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = nNodes * (nGpusperNode - 1) + 2 * nNodes - 2 + baseStep
                    transfer(srcRank, dstRank, step, (srcRank + baseStep * nGpusperNode) % nChunks, recv)
`

func main() {
	algo, err := resccl.CompileLang(hmAllReduce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %v over %d ranks, %d transfers\n",
		algo.Name, algo.Op, algo.NRanks, len(algo.Transfers))

	// Ground truth first: executing the transfer plan on concrete
	// buffers must satisfy the AllReduce postcondition.
	if err := resccl.Verify(algo); err != nil {
		log.Fatal(err)
	}
	fmt.Println("data-plane verification: AllReduce postcondition holds")

	tp := resccl.NewTopology(2, 4, resccl.A100())
	fmt.Printf("\n%-10s %-10s %12s %14s\n", "backend", "buffer", "time", "algbw (GB/s)")
	for _, kind := range []resccl.BackendKind{resccl.BackendMSCCL, resccl.BackendResCCL} {
		comm, err := resccl.NewCommunicator(tp, resccl.WithBackend(kind))
		if err != nil {
			log.Fatal(err)
		}
		for _, buf := range []int64{128 << 20, 1 << 30} {
			run, err := comm.RunAlgorithm(algo, buf)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-10d %12v %14.1f\n",
				run.Backend, buf>>20, run.Completion.Round(1000), run.AlgoBandwidth()/1e9)
		}
	}
	fmt.Println("\nsame algorithm, same cluster — the difference is backend scheduling alone.")
}
