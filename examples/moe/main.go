// Mixture-of-experts dispatch: MoE layers exchange routed tokens with
// AllToAll twice per layer (dispatch + combine). This example sizes the
// exchange for a Mixtral-class layer and shows the trade ResCCL makes:
// nearly the baseline's bandwidth at a fraction of the SM footprint,
// leaving streaming multiprocessors free for the expert GEMMs that run
// concurrently with the exchange.
package main

import (
	"fmt"
	"log"

	"github.com/resccl/resccl"
)

func main() {
	tp := resccl.NewTopology(4, 8, resccl.A100())
	fmt.Printf("MoE token exchange on %d GPUs (4 servers × 8 A100)\n\n", tp.NRanks())

	// Token payload per GPU per AllToAll: batch 8 × seq 4096 tokens,
	// hidden 4096, fp16, top-2 routing → 512 MiB leaves each GPU.
	payload := int64(8*4096) * 4096 * 2 * 2
	fmt.Printf("payload per GPU per exchange: %d MiB\n\n", payload>>20)

	fmt.Printf("%-28s %10s %14s %9s %10s\n", "configuration", "time", "algbw (GB/s)", "TB/GPU", "comm time")
	for _, k := range []resccl.BackendKind{resccl.BackendNCCL, resccl.BackendMSCCL, resccl.BackendResCCL} {
		comm, err := resccl.NewCommunicator(tp, resccl.WithBackend(k))
		if err != nil {
			log.Fatal(err)
		}
		run, err := comm.AllToAll(payload)
		if err != nil {
			log.Fatal(err)
		}
		u := run.Utilization()
		fmt.Printf("%-28s %10v %14.1f %9d %9.0f%%\n",
			k.String()+" direct exchange", run.Completion.Round(1000),
			run.AlgoBandwidth()/1e9, u.TBs, 100*u.CommTime)
	}

	// An A100 has 108 SMs; every communication TB occupies one. The SMs
	// ResCCL leaves free run the expert GEMMs that overlap the exchange.
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		log.Fatal(err)
	}
	run, err := comm.AllToAll(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-MoE-layer communication (dispatch+combine): %v\n", (2 * run.Completion).Round(1000))
	fmt.Printf("SMs left for expert compute during the exchange: %d of 108 (vs %d under the 62-TB baseline)\n",
		108-run.Utilization().TBs, 108-62)
}
