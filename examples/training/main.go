// End-to-end training: simulate Megatron-style iterations for a T5
// data-parallel deployment and a GPT-3 tensor-parallel deployment,
// reporting how each communication backend translates into training
// throughput (the paper's Fig. 13 scenario).
package main

import (
	"fmt"
	"log"

	"github.com/resccl/resccl"
)

func main() {
	kinds := []resccl.BackendKind{resccl.BackendNCCL, resccl.BackendMSCCL, resccl.BackendResCCL}

	fmt.Println("T5-3B — data parallelism over 16 GPUs (2 servers), batch 16")
	t5 := resccl.TrainConfig{
		Model:       resccl.ModelT5_3B,
		GlobalBatch: 16,
		TP:          1, DP: 16,
		NNodes: 2, GPN: 8,
	}
	printRuns(t5, kinds)

	fmt.Println("\nGPT3-22B — tensor parallelism (TP=8) over 32 GPUs (4 servers), batch 32")
	gpt := resccl.TrainConfig{
		Model:       resccl.ModelGPT3_22B,
		GlobalBatch: 32,
		TP:          8, DP: 4,
		NNodes: 4, GPN: 8,
	}
	printRuns(gpt, kinds)
}

func printRuns(cfg resccl.TrainConfig, kinds []resccl.BackendKind) {
	fmt.Printf("  %-8s %11s %12s %12s %12s %12s\n",
		"backend", "iter (ms)", "compute(ms)", "tp-comm(ms)", "dp-comm(ms)", "samples/s")
	var base float64
	for _, k := range kinds {
		res, err := resccl.SimulateTraining(cfg, k)
		if err != nil {
			log.Fatal(err)
		}
		if k == resccl.BackendNCCL {
			base = res.Throughput
		}
		fmt.Printf("  %-8s %11.1f %12.1f %12.1f %12.1f %12.2f",
			res.Backend, res.IterTime*1e3, res.Compute*1e3, res.TPComm*1e3, res.DPComm*1e3, res.Throughput)
		if k == resccl.BackendResCCL && base > 0 {
			fmt.Printf("  (%.1f%% over NCCL)", 100*(res.Throughput/base-1))
		}
		fmt.Println()
	}
}
