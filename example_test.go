package resccl_test

import (
	"fmt"

	"github.com/resccl/resccl"
)

// Example demonstrates the headline API: run an AllReduce over a
// simulated two-server A100 cluster and inspect the plan's resource
// footprint. The simulator is deterministic, so the output is stable
// for a fixed library version.
func Example() {
	tp := resccl.NewTopology(2, 8, resccl.A100())
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		panic(err)
	}
	run, err := comm.AllReduce(1 << 30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %d ranks via %s: %d TBs per GPU\n",
		run.Algorithm(), comm.NRanks(), run.Backend, run.Utilization().TBs)
	// Output:
	// HM-AllReduce on 16 ranks via ResCCL: 16 TBs per GPU
}

// ExampleCompileLang compiles a ResCCLang program and verifies it on
// the data plane.
func ExampleCompileLang() {
	src := `
def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
    N = 4
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
`
	algo, err := resccl.CompileLang(src)
	if err != nil {
		panic(err)
	}
	if err := resccl.Verify(algo); err != nil {
		panic(err)
	}
	fmt.Printf("%s: %v over %d ranks, %d transfers, verified\n",
		algo.Name, algo.Op, algo.NRanks, len(algo.Transfers))
	// Output:
	// Ring: Allgather over 4 ranks, 12 transfers, verified
}

// ExampleCommunicator_ExecuteAlgorithm proves a compiled plan
// deadlock-free by running it on the concurrent goroutine runtime.
func ExampleCommunicator_ExecuteAlgorithm() {
	tp := resccl.NewTopology(2, 4, resccl.A100())
	comm, err := resccl.NewCommunicator(tp)
	if err != nil {
		panic(err)
	}
	algo, err := resccl.BuildAlgorithm("hm-allreduce", 2, 4)
	if err != nil {
		panic(err)
	}
	if err := comm.ExecuteAlgorithm(algo, 4); err != nil {
		panic(err)
	}
	fmt.Println("4 micro-batches executed and verified")
	// Output:
	// 4 micro-batches executed and verified
}
